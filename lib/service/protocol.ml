(* Wire protocol: length-prefixed JSON frames plus the request/response
   envelope schema (docs/SERVICE.md).  Everything here is pure except the
   blocking fd helpers at the bottom — the server's event loop uses the
   string-level [decode_frame] so it never blocks mid-frame. *)

module J = Obs.Json
module V = Pgraph.Value

type invoke = {
  iv_query : string;
  iv_params : (string * V.t) list;
  iv_timeout_ms : int option;
  iv_no_cache : bool;
  iv_tenant : string option;
}

type request =
  | Install of string
  | List_queries
  | Describe of string
  | Drop of string
  | Invoke of invoke
  | Stats
  | Ping
  | Shutdown
  | Subscribe of { sub_version : int; sub_epoch : int }
  | Rep_ack of int
  | Promote
  | Follow of string
  | Status_req

type query_info = {
  qi_name : string;
  qi_params : (string * string) list;
}

type exec_result = {
  x_printed : string;
  x_tables : (string * Gsql.Table.t) list;
  x_return : Gsql.Eval.rt_value option;
  x_vsets : (string * int array) list;
}

type err_code =
  | Bad_request
  | Unknown_query
  | Bad_params
  | Overloaded
  | Timeout
  | Resource_limit
  | Exec_error
  | Read_only
  | Shutting_down
  | Internal
  | Not_leader
  | Fenced
  | Stale
  | Repl_lag

(* Machine-readable hints riding on error responses: [h_retry_ms] is the
   quota/backlog refill ETA (wait exactly that long), [h_leader] the
   rendered endpoint a [Not_leader] redirect points at. *)
type hint = { h_retry_ms : int option; h_leader : string option }

let no_hint = { h_retry_ms = None; h_leader = None }
let retry_hint ms = { no_hint with h_retry_ms = Some ms }
let leader_hint addr = { no_hint with h_leader = Some addr }

type status = {
  st_role : string;  (* "leader" | "follower" | "fenced" *)
  st_epoch : int;
  st_version : int;
  st_read_only : string option;
  st_lag_ms : float option;  (* follower: ms since last leader contact *)
  st_leader : string option;  (* follower: the leader endpoint followed *)
  st_replicas : int;  (* leader: connected subscribers *)
}

type response =
  | Installed of string list
  | Queries of query_info list
  | Described of query_info * string
  | Dropped of string
  | Result of { rs_cached : bool; rs_ms : float; rs_result : exec_result }
  | Stats_snapshot of J.t
  | Pong
  | Bye
  | Error of err_code * string * hint
      (* code, message, machine-readable hints (retry ETA, leader redirect) *)
  | Sub_ok of { so_epoch : int; so_version : int; so_ack : bool }
  | Rep_snapshot of { sn_epoch : int; sn_version : int; sn_graph : J.t }
  | Rep_batch of { rb_epoch : int; rb_batch : Store.Codec.batch }
  | Rep_heartbeat of { hb_epoch : int; hb_version : int }
  | Promoted of { pm_epoch : int; pm_version : int }
  | Following of string
  | Status of status

let err_code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_query -> "unknown_query"
  | Bad_params -> "bad_params"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Resource_limit -> "resource_limit"
  | Exec_error -> "exec_error"
  | Read_only -> "read_only"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"
  | Not_leader -> "not_leader"
  | Fenced -> "fenced"
  | Stale -> "stale"
  | Repl_lag -> "repl_lag"

let err_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_query" -> Some Unknown_query
  | "bad_params" -> Some Bad_params
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "resource_limit" -> Some Resource_limit
  | "exec_error" -> Some Exec_error
  | "read_only" -> Some Read_only
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | "not_leader" -> Some Not_leader
  | "fenced" -> Some Fenced
  | "stale" -> Some Stale
  | "repl_lag" -> Some Repl_lag
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)

(* Rendered endpoint addresses travel in [Follow] requests, [--replica-of]
   flags and [h_leader] redirect hints.  Accepted spellings:
   "unix:/path", "tcp:host:port", a bare "/path" (unix) or "host:port". *)
let endpoint_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s : ([ `Unix of string | `Tcp of string * int ], string) result =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | Some i ->
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      (match int_of_string_opt port with
       | Some p when p >= 0 && host <> "" -> Ok (`Tcp (host, p))
       | _ -> Error (Printf.sprintf "bad endpoint %S: expected host:port" s))
    | None -> Error (Printf.sprintf "bad endpoint %S: expected host:port" s)
  in
  let s = String.trim s in
  if s = "" then Error "empty endpoint"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (`Unix (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if s.[0] = '/' then Ok (`Unix s)
  else tcp s

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

(* The $-tagged value encoding lives in [Store.Codec] — the WAL writes the
   same representation to disk, and aliasing keeps wire and disk from ever
   drifting apart. *)
let value_to_json : V.t -> J.t = Store.Codec.value_to_json
let value_of_json : J.t -> (V.t, string) result = Store.Codec.value_of_json

let ( let* ) = Result.bind

let values_of_json js =
  List.fold_right
    (fun j acc ->
      let* acc = acc in
      let* v = value_of_json j in
      Ok (v :: acc))
    js (Ok [])

(* ------------------------------------------------------------------ *)
(* Tables, rt_values, results                                          *)

let table_to_json (t : Gsql.Table.t) : J.t =
  J.Obj
    [ ("cols", J.List (List.map (fun c -> J.Str c) t.Gsql.Table.cols));
      ( "rows",
        J.List
          (List.map
             (fun row -> J.List (Array.to_list (Array.map value_to_json row)))
             t.Gsql.Table.rows) ) ]

let table_of_json (j : J.t) : (Gsql.Table.t, string) result =
  match (J.member "cols" j, J.member "rows" j) with
  | Some (J.List cols), Some (J.List rows) ->
    let* cols =
      List.fold_right
        (fun c acc ->
          let* acc = acc in
          match c with J.Str s -> Ok (s :: acc) | _ -> Error "bad table column")
        cols (Ok [])
    in
    let* rows =
      List.fold_right
        (fun r acc ->
          let* acc = acc in
          match r with
          | J.List cells ->
            let* vs = values_of_json cells in
            Ok (Array.of_list vs :: acc)
          | _ -> Error "bad table row")
        rows (Ok [])
    in
    (try Ok (Gsql.Table.create cols rows)
     with Invalid_argument msg -> Error ("bad table: " ^ msg))
  | _ -> Error "bad table encoding"

let ids_to_json ids = J.List (Array.to_list (Array.map (fun i -> J.Int i) ids))

let ids_of_json = function
  | J.List js ->
    let* ids =
      List.fold_right
        (fun j acc ->
          let* acc = acc in
          match j with J.Int i -> Ok (i :: acc) | _ -> Error "bad vertex id")
        js (Ok [])
    in
    Ok (Array.of_list ids)
  | _ -> Error "bad vertex-id list"

let rt_to_json (rt : Gsql.Eval.rt_value) : J.t =
  match rt with
  | Gsql.Eval.R_scalar v -> J.Obj [ ("kind", J.Str "scalar"); ("value", value_to_json v) ]
  | Gsql.Eval.R_vset ids -> J.Obj [ ("kind", J.Str "vset"); ("ids", ids_to_json ids) ]
  | Gsql.Eval.R_table t -> J.Obj [ ("kind", J.Str "table"); ("table", table_to_json t) ]

let rt_of_json (j : J.t) : (Gsql.Eval.rt_value, string) result =
  match J.member "kind" j with
  | Some (J.Str "scalar") ->
    (match J.member "value" j with
     | Some v ->
       let* v = value_of_json v in
       Ok (Gsql.Eval.R_scalar v)
     | None -> Error "scalar return without value")
  | Some (J.Str "vset") ->
    (match J.member "ids" j with
     | Some ids ->
       let* ids = ids_of_json ids in
       Ok (Gsql.Eval.R_vset ids)
     | None -> Error "vset return without ids")
  | Some (J.Str "table") ->
    (match J.member "table" j with
     | Some t ->
       let* t = table_of_json t in
       Ok (Gsql.Eval.R_table t)
     | None -> Error "table return without table")
  | _ -> Error "bad return encoding"

let result_to_json (r : exec_result) : J.t =
  J.Obj
    [ ("printed", J.Str r.x_printed);
      ( "tables",
        J.List
          (List.map
             (fun (name, t) ->
               match table_to_json t with
               | J.Obj fields -> J.Obj (("name", J.Str name) :: fields)
               | j -> j)
             r.x_tables) );
      ( "vsets",
        J.List
          (List.map
             (fun (name, ids) -> J.Obj [ ("name", J.Str name); ("ids", ids_to_json ids) ])
             r.x_vsets) );
      ("return", match r.x_return with None -> J.Null | Some rt -> rt_to_json rt) ]

let result_of_json (j : J.t) : (exec_result, string) result =
  let* printed =
    match J.member "printed" j with
    | Some (J.Str s) -> Ok s
    | _ -> Error "result without printed"
  in
  let* tables =
    match J.member "tables" j with
    | Some (J.List ts) ->
      List.fold_right
        (fun tj acc ->
          let* acc = acc in
          match J.member "name" tj with
          | Some (J.Str name) ->
            let* t = table_of_json tj in
            Ok ((name, t) :: acc)
          | _ -> Error "table without name")
        ts (Ok [])
    | _ -> Error "result without tables"
  in
  let* vsets =
    match J.member "vsets" j with
    | Some (J.List vs) ->
      List.fold_right
        (fun vj acc ->
          let* acc = acc in
          match (J.member "name" vj, J.member "ids" vj) with
          | Some (J.Str name), Some ids ->
            let* ids = ids_of_json ids in
            Ok ((name, ids) :: acc)
          | _ -> Error "bad vset entry")
        vs (Ok [])
    | _ -> Error "result without vsets"
  in
  let* ret =
    match J.member "return" j with
    | Some J.Null | None -> Ok None
    | Some rj ->
      let* rt = rt_of_json rj in
      Ok (Some rt)
  in
  Ok { x_printed = printed; x_tables = tables; x_return = ret; x_vsets = vsets }

let of_eval_result (r : Gsql.Eval.result) : exec_result =
  { x_printed = r.Gsql.Eval.r_printed;
    x_tables = r.Gsql.Eval.r_tables;
    x_return = r.Gsql.Eval.r_return;
    x_vsets = r.Gsql.Eval.r_vsets }

let table_equal (a : Gsql.Table.t) (b : Gsql.Table.t) =
  a.Gsql.Table.cols = b.Gsql.Table.cols
  && List.length a.Gsql.Table.rows = List.length b.Gsql.Table.rows
  && List.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 V.equal ra rb)
       a.Gsql.Table.rows b.Gsql.Table.rows

let rt_equal a b =
  match (a, b) with
  | Gsql.Eval.R_scalar x, Gsql.Eval.R_scalar y -> V.equal x y
  | Gsql.Eval.R_vset x, Gsql.Eval.R_vset y -> x = y
  | Gsql.Eval.R_table x, Gsql.Eval.R_table y -> table_equal x y
  | _ -> false

let exec_result_equal a b =
  a.x_printed = b.x_printed
  && List.length a.x_tables = List.length b.x_tables
  && List.for_all2
       (fun (na, ta) (nb, tb) -> na = nb && table_equal ta tb)
       a.x_tables b.x_tables
  && a.x_vsets = b.x_vsets
  && (match (a.x_return, b.x_return) with
      | None, None -> true
      | Some x, Some y -> rt_equal x y
      | _ -> false)

let pp_exec_result fmt r = Format.pp_print_string fmt (J.to_string (result_to_json r))

(* ------------------------------------------------------------------ *)
(* Envelopes                                                           *)

let params_to_json params =
  J.Obj (List.map (fun (name, v) -> (name, value_to_json v)) params)

let request_to_json ~id (req : request) : J.t =
  let fields =
    match req with
    | Install source -> [ ("op", J.Str "install"); ("source", J.Str source) ]
    | List_queries -> [ ("op", J.Str "list") ]
    | Describe name -> [ ("op", J.Str "describe"); ("query", J.Str name) ]
    | Drop name -> [ ("op", J.Str "drop"); ("query", J.Str name) ]
    | Invoke iv ->
      [ ("op", J.Str "invoke");
        ("query", J.Str iv.iv_query);
        ("params", params_to_json iv.iv_params) ]
      @ (match iv.iv_timeout_ms with None -> [] | Some ms -> [ ("timeout_ms", J.Int ms) ])
      @ (match iv.iv_tenant with None -> [] | Some t -> [ ("tenant", J.Str t) ])
      @ if iv.iv_no_cache then [ ("no_cache", J.Bool true) ] else []
    | Stats -> [ ("op", J.Str "stats") ]
    | Ping -> [ ("op", J.Str "ping") ]
    | Shutdown -> [ ("op", J.Str "shutdown") ]
    | Subscribe { sub_version; sub_epoch } ->
      [ ("op", J.Str "subscribe"); ("version", J.Int sub_version); ("epoch", J.Int sub_epoch) ]
    | Rep_ack version -> [ ("op", J.Str "rep-ack"); ("version", J.Int version) ]
    | Promote -> [ ("op", J.Str "promote") ]
    | Follow addr -> [ ("op", J.Str "follow"); ("leader", J.Str addr) ]
    | Status_req -> [ ("op", J.Str "status") ]
  in
  J.Obj (("id", J.Int id) :: fields)

let envelope_id j =
  match J.member "id" j with Some (J.Int id) -> Ok id | _ -> Error "envelope without id"

let request_of_json (j : J.t) : (int * request, string) result =
  let* id = envelope_id j in
  let* req =
    match J.member "op" j with
    | Some (J.Str "install") ->
      (match J.member "source" j with
       | Some (J.Str s) -> Ok (Install s)
       | _ -> Error "install without source")
    | Some (J.Str "list") -> Ok List_queries
    | Some (J.Str "describe") ->
      (match J.member "query" j with
       | Some (J.Str q) -> Ok (Describe q)
       | _ -> Error "describe without query")
    | Some (J.Str "drop") ->
      (match J.member "query" j with
       | Some (J.Str q) -> Ok (Drop q)
       | _ -> Error "drop without query")
    | Some (J.Str "invoke") ->
      (match J.member "query" j with
       | Some (J.Str q) ->
         let* params =
           match J.member "params" j with
           | None -> Ok []
           | Some (J.Obj fields) ->
             List.fold_right
               (fun (name, vj) acc ->
                 let* acc = acc in
                 let* v = value_of_json vj in
                 Ok ((name, v) :: acc))
               fields (Ok [])
           | Some _ -> Error "invoke params must be an object"
         in
         let timeout_ms =
           match J.member "timeout_ms" j with Some (J.Int ms) -> Some ms | _ -> None
         in
         let no_cache =
           match J.member "no_cache" j with Some (J.Bool b) -> b | _ -> false
         in
         let tenant =
           match J.member "tenant" j with Some (J.Str t) -> Some t | _ -> None
         in
         Ok (Invoke { iv_query = q; iv_params = params; iv_timeout_ms = timeout_ms;
                      iv_no_cache = no_cache; iv_tenant = tenant })
       | _ -> Error "invoke without query")
    | Some (J.Str "stats") -> Ok Stats
    | Some (J.Str "ping") -> Ok Ping
    | Some (J.Str "shutdown") -> Ok Shutdown
    | Some (J.Str "subscribe") ->
      (match (J.member "version" j, J.member "epoch" j) with
       | Some (J.Int v), Some (J.Int e) -> Ok (Subscribe { sub_version = v; sub_epoch = e })
       | _ -> Error "subscribe without version/epoch")
    | Some (J.Str "rep-ack") ->
      (match J.member "version" j with
       | Some (J.Int v) -> Ok (Rep_ack v)
       | _ -> Error "rep-ack without version")
    | Some (J.Str "promote") -> Ok Promote
    | Some (J.Str "follow") ->
      (match J.member "leader" j with
       | Some (J.Str addr) -> Ok (Follow addr)
       | _ -> Error "follow without leader")
    | Some (J.Str "status") -> Ok Status_req
    | Some (J.Str op) -> Error ("unknown op: " ^ op)
    | _ -> Error "envelope without op"
  in
  Ok (id, req)

let query_info_to_json qi =
  J.Obj
    [ ("name", J.Str qi.qi_name);
      ( "params",
        J.List
          (List.map
             (fun (n, ty) -> J.Obj [ ("name", J.Str n); ("type", J.Str ty) ])
             qi.qi_params) ) ]

let query_info_of_json j =
  match (J.member "name" j, J.member "params" j) with
  | Some (J.Str name), Some (J.List ps) ->
    let* params =
      List.fold_right
        (fun pj acc ->
          let* acc = acc in
          match (J.member "name" pj, J.member "type" pj) with
          | Some (J.Str n), Some (J.Str ty) -> Ok ((n, ty) :: acc)
          | _ -> Error "bad param descriptor")
        ps (Ok [])
    in
    Ok { qi_name = name; qi_params = params }
  | _ -> Error "bad query descriptor"

let str_list_of_json what = function
  | J.List js ->
    List.fold_right
      (fun j acc ->
        let* acc = acc in
        match j with J.Str s -> Ok (s :: acc) | _ -> Error ("bad " ^ what))
      js (Ok [])
  | _ -> Error ("bad " ^ what)

let response_to_json ~id (resp : response) : J.t =
  let fields =
    match resp with
    | Installed names ->
      [ ("ok", J.Bool true); ("installed", J.List (List.map (fun n -> J.Str n) names)) ]
    | Queries qis ->
      [ ("ok", J.Bool true); ("queries", J.List (List.map query_info_to_json qis)) ]
    | Described (qi, source) ->
      [ ("ok", J.Bool true); ("described", query_info_to_json qi); ("source", J.Str source) ]
    | Dropped name -> [ ("ok", J.Bool true); ("dropped", J.Str name) ]
    | Result { rs_cached; rs_ms; rs_result } ->
      [ ("ok", J.Bool true);
        ("cached", J.Bool rs_cached);
        ("ms", J.Float rs_ms);
        ("result", result_to_json rs_result) ]
    | Stats_snapshot stats -> [ ("ok", J.Bool true); ("stats", stats) ]
    | Pong -> [ ("ok", J.Bool true); ("pong", J.Bool true) ]
    | Bye -> [ ("ok", J.Bool true); ("bye", J.Bool true) ]
    | Error (code, msg, hint) ->
      [ ("ok", J.Bool false);
        ("code", J.Str (err_code_to_string code));
        ("error", J.Str msg) ]
      @ (match hint.h_retry_ms with
         | None -> []
         | Some ms -> [ ("retry_after_ms", J.Int ms) ])
      @ (match hint.h_leader with
         | None -> []
         | Some addr -> [ ("leader", J.Str addr) ])
    | Sub_ok { so_epoch; so_version; so_ack } ->
      [ ("ok", J.Bool true);
        ( "sub",
          J.Obj
            [ ("epoch", J.Int so_epoch); ("version", J.Int so_version);
              ("ack", J.Bool so_ack) ] ) ]
    | Rep_snapshot { sn_epoch; sn_version; sn_graph } ->
      [ ("ok", J.Bool true);
        ( "snapshot",
          J.Obj
            [ ("epoch", J.Int sn_epoch); ("version", J.Int sn_version);
              ("graph", sn_graph) ] ) ]
    | Rep_batch { rb_epoch; rb_batch } ->
      [ ("ok", J.Bool true);
        ( "batch",
          J.Obj [ ("epoch", J.Int rb_epoch); ("data", Store.Codec.batch_to_json rb_batch) ] ) ]
    | Rep_heartbeat { hb_epoch; hb_version } ->
      [ ("ok", J.Bool true);
        ("heartbeat", J.Obj [ ("epoch", J.Int hb_epoch); ("version", J.Int hb_version) ]) ]
    | Promoted { pm_epoch; pm_version } ->
      [ ("ok", J.Bool true);
        ("promoted", J.Obj [ ("epoch", J.Int pm_epoch); ("version", J.Int pm_version) ]) ]
    | Following addr -> [ ("ok", J.Bool true); ("following", J.Str addr) ]
    | Status st ->
      [ ("ok", J.Bool true);
        ( "status",
          J.Obj
            ([ ("role", J.Str st.st_role);
               ("epoch", J.Int st.st_epoch);
               ("version", J.Int st.st_version);
               ( "read_only",
                 match st.st_read_only with None -> J.Bool false | Some why -> J.Str why );
               ("replicas", J.Int st.st_replicas) ]
            @ (match st.st_lag_ms with None -> [] | Some ms -> [ ("lag_ms", J.Float ms) ])
            @ (match st.st_leader with None -> [] | Some a -> [ ("leader", J.Str a) ])) ) ]
  in
  J.Obj (("id", J.Int id) :: fields)

(* The replication and health-check member shapes, tried after the classic
   members so the hot request/response path stays first-match. *)
let repl_response_of_json (j : J.t) : (response, string) result =
  let int_member what obj name =
    match J.member name obj with
    | Some (J.Int n) -> Ok n
    | _ -> Result.Error (Printf.sprintf "bad %s: missing %s" what name)
  in
  match J.member "sub" j with
  | Some sj ->
    let* e = int_member "sub" sj "epoch" in
    let* v = int_member "sub" sj "version" in
    let ack = match J.member "ack" sj with Some (J.Bool b) -> b | _ -> false in
    Ok (Sub_ok { so_epoch = e; so_version = v; so_ack = ack })
  | None ->
    (match J.member "snapshot" j with
     | Some sj ->
       let* e = int_member "snapshot" sj "epoch" in
       let* v = int_member "snapshot" sj "version" in
       (match J.member "graph" sj with
        | Some g -> Ok (Rep_snapshot { sn_epoch = e; sn_version = v; sn_graph = g })
        | None -> Result.Error "bad snapshot: missing graph")
     | None ->
       (match J.member "batch" j with
        | Some bj ->
          let* e = int_member "batch" bj "epoch" in
          (match J.member "data" bj with
           | Some dj ->
             let* b = Store.Codec.batch_of_json dj in
             Ok (Rep_batch { rb_epoch = e; rb_batch = b })
           | None -> Result.Error "bad batch: missing data")
        | None ->
          (match J.member "heartbeat" j with
           | Some hj ->
             let* e = int_member "heartbeat" hj "epoch" in
             let* v = int_member "heartbeat" hj "version" in
             Ok (Rep_heartbeat { hb_epoch = e; hb_version = v })
           | None ->
             (match J.member "promoted" j with
              | Some pj ->
                let* e = int_member "promoted" pj "epoch" in
                let* v = int_member "promoted" pj "version" in
                Ok (Promoted { pm_epoch = e; pm_version = v })
              | None ->
                (match J.member "following" j with
                 | Some (J.Str addr) -> Ok (Following addr)
                 | Some _ -> Result.Error "bad following"
                 | None ->
                   (match J.member "status" j with
                    | Some sj ->
                      let* e = int_member "status" sj "epoch" in
                      let* v = int_member "status" sj "version" in
                      let* role =
                        match J.member "role" sj with
                        | Some (J.Str r) -> Ok r
                        | _ -> Result.Error "bad status: missing role"
                      in
                      let read_only =
                        match J.member "read_only" sj with
                        | Some (J.Str why) -> Some why
                        | _ -> None
                      in
                      let lag_ms =
                        match J.member "lag_ms" sj with
                        | Some m -> J.to_float_opt m
                        | None -> None
                      in
                      let leader =
                        match J.member "leader" sj with Some (J.Str a) -> Some a | _ -> None
                      in
                      let replicas =
                        match J.member "replicas" sj with Some (J.Int n) -> n | _ -> 0
                      in
                      Ok
                        (Status
                           { st_role = role; st_epoch = e; st_version = v;
                             st_read_only = read_only; st_lag_ms = lag_ms;
                             st_leader = leader; st_replicas = replicas })
                    | None ->
                      (match (J.member "pong" j, J.member "bye" j) with
                       | Some (J.Bool true), _ -> Ok Pong
                       | _, Some (J.Bool true) -> Ok Bye
                       | _ -> Result.Error "unrecognized response")))))))

let response_of_json (j : J.t) : (int * response, string) result =
  let* id = envelope_id j in
  let* resp =
    match J.member "ok" j with
    | Some (J.Bool false) ->
      (match (J.member "code" j, J.member "error" j) with
       | Some (J.Str code), Some (J.Str msg) ->
         let hint =
           { h_retry_ms =
               (match J.member "retry_after_ms" j with Some (J.Int ms) -> Some ms | _ -> None);
             h_leader =
               (match J.member "leader" j with Some (J.Str a) -> Some a | _ -> None) }
         in
         (match err_code_of_string code with
          | Some c -> Ok (Error (c, msg, hint))
          | None -> Ok (Error (Internal, code ^ ": " ^ msg, hint)))
       | _ -> Result.Error "error response without code/error")
    | Some (J.Bool true) ->
      (match J.member "installed" j with
       | Some names ->
         let* names = str_list_of_json "installed names" names in
         Ok (Installed names)
       | None ->
         (match J.member "queries" j with
          | Some (J.List qis) ->
            let* qis =
              List.fold_right
                (fun qj acc ->
                  let* acc = acc in
                  let* qi = query_info_of_json qj in
                  Ok (qi :: acc))
                qis (Ok [])
            in
            Ok (Queries qis)
          | Some _ -> Result.Error "bad queries list"
          | None ->
            (match (J.member "described" j, J.member "source" j) with
             | Some qj, Some (J.Str source) ->
               let* qi = query_info_of_json qj in
               Ok (Described (qi, source))
             | _ ->
               (match J.member "dropped" j with
                | Some (J.Str name) -> Ok (Dropped name)
                | _ ->
                  (match J.member "result" j with
                   | Some rj ->
                     let* r = result_of_json rj in
                     let cached =
                       match J.member "cached" j with Some (J.Bool b) -> b | _ -> false
                     in
                     let ms =
                       match J.member "ms" j with
                       | Some m -> Option.value ~default:0.0 (J.to_float_opt m)
                       | None -> 0.0
                     in
                     Ok (Result { rs_cached = cached; rs_ms = ms; rs_result = r })
                   | None ->
                     (match J.member "stats" j with
                      | Some stats -> Ok (Stats_snapshot stats)
                      | None -> repl_response_of_json j))))))
    | _ -> Result.Error "response without ok"
  in
  Ok (id, resp)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let max_frame_bytes = 64 * 1024 * 1024

let encode_frame (j : J.t) : string =
  let payload = J.to_string j in
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Protocol.encode_frame: frame too large";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* An oversized header is unrecoverable: the advertised length is bogus, so
   there is no trustworthy "next frame" position — the caller must drop the
   connection after reporting the error (it consumes the whole buffer). *)
let decode_frame ?(max_bytes = max_frame_bytes) (buf : string) ~pos =
  let avail = String.length buf - pos in
  if avail < 4 then `Need_more
  else
    let byte i = Char.code buf.[pos + i] in
    let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if n > min max_bytes max_frame_bytes then
      `Frame (Result.Error (Printf.sprintf "frame too large (%d bytes)" n), String.length buf)
    else if avail < 4 + n then `Need_more
    else
      let payload = String.sub buf (pos + 4) n in
      `Frame (J.parse payload, pos + 4 + n)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] 1.0);
      write_all fd b off len

let write_frame fd j =
  let s = encode_frame j in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let read_exactly fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Ok b
    else
      match Unix.read fd b off (n - off) with
      | 0 -> Result.Error `Eof
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [ fd ] [] [] 1.0);
        go off
  in
  go 0

let read_frame fd =
  match read_exactly fd 4 with
  | Result.Error `Eof -> Result.Error `Eof
  | Ok hdr ->
    let byte i = Char.code (Bytes.get hdr i) in
    let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if n > max_frame_bytes then Result.Error (`Err "frame too large")
    else
      (match read_exactly fd n with
       | Result.Error `Eof -> Result.Error `Eof
       | Ok payload ->
         (match J.parse (Bytes.unsafe_to_string payload) with
          | Ok j -> Ok j
          | Result.Error msg -> Result.Error (`Err msg)))
