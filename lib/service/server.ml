(* The service event loop.

   Single-threaded select loop: accepts connections, pops protocol frames
   out of per-connection buffers, answers control requests inline and hands
   invocations to the worker pool, then sweeps pending jobs for completions
   and blown deadlines on every tick.  All Obs.Metrics / Obs.Trace calls
   happen on this thread (the registry and the span stack are not
   domain-safe); workers run pure engine thunks. *)

module J = Obs.Json
module P = Protocol

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : endpoint;
  workers : int option;
  queue_capacity : int;
  default_timeout_ms : int;
  max_connections : int;
  faults : Faults.t;
}

let default_config listen =
  { listen; workers = None; queue_capacity = 64; default_timeout_ms = 30_000;
    max_connections = 64; faults = Faults.from_env () }

(* Instrument handles are registered once; recording is a no-op unless the
   caller (serve --trace, BENCH_JSON) enabled the registry. *)
let m_requests = Obs.Metrics.counter "service/requests"
let m_cache_hits = Obs.Metrics.counter "service/cache_hits"
let m_cache_misses = Obs.Metrics.counter "service/cache_misses"
let m_timeouts = Obs.Metrics.counter "service/timeouts"
let m_overloaded = Obs.Metrics.counter "service/overloaded"
let m_errors = Obs.Metrics.counter "service/errors"
let m_queue_depth = Obs.Metrics.gauge "service/queue_depth"
let m_connections = Obs.Metrics.gauge "service/connections"
let m_latency = Obs.Metrics.histogram "service/latency_ms"
let m_cancellations = Obs.Metrics.counter "service/cancellations"
let m_reclaim = Obs.Metrics.histogram "service/reclaim_ms"

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : string;   (* unconsumed input *)
  mutable alive : bool;
}

type pending = {
  p_conn : conn;
  p_id : int;
  p_query : string;
  p_job : P.response Pool.job;
  p_budget : Interrupt.budget;
  p_deadline : float;
  p_start : float;
}

(* A cancelled job whose worker has not yet unwound: still counted
   against the pool until its state turns Done/Failed, at which point the
   worker is back in rotation and the reclaim latency is recorded. *)
type reclaiming = {
  r_job : P.response Pool.job;
  r_query : string;
  r_since : float;
}

type t = {
  engine : Engine.t;
  cfg : config;
  pool : P.response Pool.t;
  listen_fd : Unix.file_descr;
  bound : endpoint;
  stop_flag : bool Atomic.t;
  mutable conns : conn list;
  mutable pending : pending list;
  mutable reclaiming : reclaiming list;
  mutable n_timeouts : int;
  mutable n_overloaded : int;
  mutable n_cancellations : int;
  mutable n_reclaimed : int;
}

let create cfg engine =
  let domain, addr =
    match cfg.listen with
    | `Unix path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  (* A peer that disconnects with a response in flight must surface as
     EPIPE on the write (handled in [send]), not as a fatal SIGPIPE. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.listen with
   | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
   | `Unix _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound =
    match (cfg.listen, Unix.getsockname fd) with
    | `Tcp (host, _), Unix.ADDR_INET (_, port) -> `Tcp (host, port)
    | ep, _ -> ep
  in
  let pool = Pool.create ?workers:cfg.workers ~queue_capacity:cfg.queue_capacity () in
  { engine; cfg; pool; listen_fd = fd; bound; stop_flag = Atomic.make false;
    conns = []; pending = []; reclaiming = []; n_timeouts = 0; n_overloaded = 0;
    n_cancellations = 0; n_reclaimed = 0 }

let endpoint t = t.bound
let stop t = Atomic.set t.stop_flag true

let now () = Unix.gettimeofday ()

let send t conn ~id resp =
  if conn.alive then
    if Faults.drop_frame t.cfg.faults then ()  (* injected: frame lost on the wire *)
    else
      try P.write_frame conn.fd (P.response_to_json ~id resp)
      with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

(* Cancel an in-flight job and track it until its worker unwinds — the
   cooperative-cancellation half of the deadline/disconnect paths. *)
let cancel_pending t (p : pending) ~at =
  t.n_cancellations <- t.n_cancellations + 1;
  Obs.Metrics.incr m_cancellations 1;
  Interrupt.cancel p.p_budget;
  t.reclaiming <- { r_job = p.p_job; r_query = p.p_query; r_since = at } :: t.reclaiming

(* Retire reclaiming entries whose job completed: the worker is back in
   rotation.  The result (if any) is discarded — the requester was already
   answered when the cancellation was issued. *)
let sweep_reclaiming t =
  let tick_now = now () in
  t.reclaiming <-
    List.filter
      (fun r ->
        match Pool.state r.r_job with
        | Pool.Done _ | Pool.Failed _ ->
          t.n_reclaimed <- t.n_reclaimed + 1;
          Obs.Metrics.observe m_reclaim ((tick_now -. r.r_since) *. 1000.0);
          false
        | Pool.Queued | Pool.Running -> true)
      t.reclaiming

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end;
  (* Cancel this connection's in-flight jobs: nobody is left to answer,
     so reclaim the workers instead of letting them finish for nothing. *)
  let gone, still = List.partition (fun p -> p.p_conn == conn) t.pending in
  let at = now () in
  List.iter (fun p -> cancel_pending t p ~at) gone;
  t.pending <- still

let record_outcome ~query ~ms resp =
  Obs.Metrics.incr m_requests 1;
  (match resp with
   | P.Result { rs_cached = true; _ } -> Obs.Metrics.incr m_cache_hits 1
   | P.Result _ -> Obs.Metrics.incr m_cache_misses 1
   | P.Error (P.Timeout, _) -> Obs.Metrics.incr m_timeouts 1
   | P.Error (P.Overloaded, _) -> Obs.Metrics.incr m_overloaded 1
   | P.Error _ -> Obs.Metrics.incr m_errors 1
   | _ -> ());
  Obs.Metrics.observe m_latency ms;
  if Obs.Trace.enabled () then
    Obs.Trace.event "service/request"
      [ ("query", J.Str query);
        ("ms", J.Float ms);
        ( "outcome",
          J.Str
            (match resp with
             | P.Result { rs_cached; _ } -> if rs_cached then "hit" else "executed"
             | P.Error (code, _) -> P.err_code_to_string code
             | _ -> "ok") ) ]

let server_stats t =
  [ ("connections", J.Int (List.length t.conns));
    ("pending", J.Int (List.length t.pending));
    ("queue_depth", J.Int (Pool.queue_depth t.pool));
    ("running", J.Int (Pool.running t.pool));
    ("workers", J.Int (Pool.workers t.pool));
    ("timeouts", J.Int t.n_timeouts);
    ("overloaded", J.Int t.n_overloaded);
    ("cancellations", J.Int t.n_cancellations);
    ("reclaimed", J.Int t.n_reclaimed);
    (* Cancelled jobs whose worker has not unwound yet; a healthy governor
       drives this back to 0 shortly after every cancellation. *)
    ("workers_leaked", J.Int (List.length t.reclaiming));
    ("default_timeout_ms", J.Int t.cfg.default_timeout_ms) ]

let handle_request t conn ~id (req : P.request) =
  match req with
  | P.Ping -> send t conn ~id P.Pong
  | P.Install source -> send t conn ~id (Engine.install t.engine source)
  | P.List_queries -> send t conn ~id (Engine.list_queries t.engine)
  | P.Describe name -> send t conn ~id (Engine.describe t.engine name)
  | P.Drop name -> send t conn ~id (Engine.drop t.engine name)
  | P.Stats -> send t conn ~id (Engine.stats t.engine ~extra:(server_stats t))
  | P.Shutdown ->
    send t conn ~id P.Bye;
    stop t
  | P.Invoke iv ->
    let t0 = now () in
    (match Engine.prepare_invoke t.engine iv with
     | `Ready resp ->
       record_outcome ~query:iv.P.iv_query ~ms:((now () -. t0) *. 1000.0) resp;
       send t conn ~id resp
     | `Run prepared ->
       (* The job shares the budget's cancel flag, so flipping either
          stops both the queued job and the running execution. *)
       let faults = t.cfg.faults in
       let thunk () =
         Faults.worker_entry faults;
         prepared.Engine.pr_thunk ()
       in
       (match
          Pool.submit ~cancel:(Interrupt.cancel_token prepared.Engine.pr_budget) t.pool thunk
        with
        | Ok job ->
          let timeout_ms =
            match iv.P.iv_timeout_ms with
            | Some ms when ms > 0 -> ms
            | _ -> t.cfg.default_timeout_ms
          in
          t.pending <-
            { p_conn = conn; p_id = id; p_query = iv.P.iv_query; p_job = job;
              p_budget = prepared.Engine.pr_budget;
              p_deadline = t0 +. (float_of_int timeout_ms /. 1000.0); p_start = t0 }
            :: t.pending
        | Error `Overloaded ->
          t.n_overloaded <- t.n_overloaded + 1;
          let resp = P.Error (P.Overloaded, "admission queue full") in
          record_outcome ~query:iv.P.iv_query ~ms:0.0 resp;
          send t conn ~id resp
        | Error `Shutdown ->
          send t conn ~id (P.Error (P.Shutting_down, "server stopping"))))

let handle_frame t conn = function
  | Result.Error msg -> send t conn ~id:0 (P.Error (P.Bad_request, msg))
  | Ok payload ->
    (match P.request_of_json payload with
     | Result.Error msg -> send t conn ~id:0 (P.Error (P.Bad_request, msg))
     | Ok (id, req) -> handle_request t conn ~id req)

let drain_conn_buffer t conn =
  let rec go pos =
    if not conn.alive then ()
    else
      match P.decode_frame conn.rbuf ~pos with
      | `Need_more ->
        if pos > 0 then conn.rbuf <- String.sub conn.rbuf pos (String.length conn.rbuf - pos)
      | `Frame (frame, next) ->
        handle_frame t conn frame;
        go next
  in
  go 0

let read_chunk_size = 65536

let on_readable t conn =
  Faults.before_read t.cfg.faults;
  let b = Bytes.create read_chunk_size in
  match Unix.read conn.fd b 0 read_chunk_size with
  | 0 -> close_conn t conn
  | n ->
    conn.rbuf <- conn.rbuf ^ Bytes.sub_string b 0 n;
    drain_conn_buffer t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if List.length t.conns >= t.cfg.max_connections then begin
        (* Shed the connection with an explanation rather than a raw close. *)
        (try P.write_frame fd (P.response_to_json ~id:0 (P.Error (P.Overloaded, "connection limit")))
         with Unix.Unix_error _ | Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        t.conns <- { fd; rbuf = ""; alive = true } :: t.conns;
        go ()
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let sweep_pending t =
  let tick_now = now () in
  let still =
    List.filter
      (fun p ->
        if not p.p_conn.alive then begin
          (* Writer noticed the peer is gone (failed send): reclaim. *)
          cancel_pending t p ~at:tick_now;
          false
        end
        else
          match Pool.state p.p_job with
          | Pool.Done resp ->
            let ms = (tick_now -. p.p_start) *. 1000.0 in
            record_outcome ~query:p.p_query ~ms resp;
            send t p.p_conn ~id:p.p_id resp;
            false
          | Pool.Failed msg ->
            let resp = P.Error (P.Internal, msg) in
            record_outcome ~query:p.p_query ~ms:((tick_now -. p.p_start) *. 1000.0) resp;
            send t p.p_conn ~id:p.p_id resp;
            false
          | Pool.Queued | Pool.Running ->
            if tick_now >= p.p_deadline then begin
              t.n_timeouts <- t.n_timeouts + 1;
              let resp =
                P.Error
                  (P.Timeout,
                   Printf.sprintf "%s exceeded its deadline" p.p_query)
              in
              record_outcome ~query:p.p_query ~ms:((tick_now -. p.p_start) *. 1000.0) resp;
              send t p.p_conn ~id:p.p_id resp;
              (* Cancelled, not abandoned: the budget's flag is flipped and
                 the worker unwinds at its next checkpoint (tracked in
                 t.reclaiming until it does). *)
              cancel_pending t p ~at:tick_now;
              false
            end
            else true)
      t.pending
  in
  t.pending <- still

let run t =
  let tick = 0.02 in
  while not (Atomic.get t.stop_flag) do
    t.conns <- List.filter (fun c -> c.alive) t.conns;
    Obs.Metrics.set_gauge m_connections (float_of_int (List.length t.conns));
    Obs.Metrics.set_gauge m_queue_depth (float_of_int (Pool.queue_depth t.pool));
    let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    let readable, _, _ =
      try Unix.select fds [] [] tick
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd readable then accept_ready t;
    List.iter
      (fun conn -> if conn.alive && List.memq conn.fd readable then on_readable t conn)
      t.conns;
    sweep_pending t;
    sweep_reclaiming t
  done;
  (* Drain: stop accepting, answer what the pool still finishes quickly,
     fail the rest, then join the workers. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.listen with
   | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | `Tcp _ -> ());
  List.iter
    (fun p ->
      match Pool.state p.p_job with
      | Pool.Done resp -> send t p.p_conn ~id:p.p_id resp
      | _ ->
        send t p.p_conn ~id:p.p_id (P.Error (P.Shutting_down, "server stopping"));
        (* Cancel so Pool.shutdown's worker join is bounded by one
           checkpoint interval, not by the query's natural runtime. *)
        Interrupt.cancel p.p_budget)
    t.pending;
  t.pending <- [];
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  Pool.shutdown ~drain:false t.pool
