(* The service event loop.

   Single-threaded select loop: accepts connections, pops protocol frames
   out of per-connection buffers, answers control requests inline and hands
   invocations to the worker pool, then sweeps pending jobs for
   completions and blown deadlines, pumps the single-writer lane and
   retires reclaimed workers on every tick.  Obs.Metrics / Obs.Trace are
   domain-safe (mutexed registry, domain-local span stacks), so workers
   may record too.

   Multi-tenancy (docs/SERVICE.md): every invocation belongs to a tenant
   — the frame's [tenant] field, or the connection's anonymous per-
   connection tenant.  Admission is weighted-fair (Pool's deficit round
   robin over per-tenant bounded sub-queues), quotas are token buckets
   (Tenant) that cap each execution's Interrupt budget and are charged
   with actual consumption when the job retires, and degradation under
   saturation is by cost: cache hits are answered inline on the loop and
   never queue, never spend quota — the cheap reads that keep flowing
   while expensive executions shed. *)

module J = Obs.Json
module P = Protocol

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : endpoint;
  workers : int option;
  queue_capacity : int;
  per_tenant_queue : int;  (* per-tenant sub-queue bound *)
  default_timeout_ms : int;
  max_connections : int;
  max_inflight : int;  (* per-connection in-flight invocation cap *)
  max_frame_bytes : int;  (* inbound frame acceptance cap *)
  tenant_weights : (string * int) list;  (* DRR weights; unlisted = 1 *)
  quota_steps : int;  (* per-tenant step tokens per second; 0 = off *)
  quota_rows : int;  (* per-tenant row tokens per second; 0 = off *)
  faults : Faults.t;
  replica_of : string option;  (* follow this leader endpoint from boot *)
  sync_replicas : int;  (* follower acks required per commit; 0 = async *)
  sync_timeout_ms : int;  (* quorum wait bound before answering repl_lag *)
  max_staleness_ms : int;  (* follower read bound; 0 = serve any age *)
}

let default_config listen =
  { listen; workers = None; queue_capacity = 64; per_tenant_queue = 16;
    default_timeout_ms = 30_000; max_connections = 64; max_inflight = 32;
    max_frame_bytes = P.max_frame_bytes; tenant_weights = []; quota_steps = 0;
    quota_rows = 0; faults = Faults.from_env (); replica_of = None;
    sync_replicas = 0; sync_timeout_ms = 1_000; max_staleness_ms = 0 }

(* Instrument handles are registered once; recording is a no-op unless the
   caller (serve --trace, BENCH_JSON) enabled the registry. *)
let m_requests = Obs.Metrics.counter "service/requests"
let m_cache_hits = Obs.Metrics.counter "service/cache_hits"
let m_cache_misses = Obs.Metrics.counter "service/cache_misses"
let m_timeouts = Obs.Metrics.counter "service/timeouts"
let m_overloaded = Obs.Metrics.counter "service/overloaded"
let m_errors = Obs.Metrics.counter "service/errors"
let m_queue_depth = Obs.Metrics.gauge "service/queue_depth"
let m_connections = Obs.Metrics.gauge "service/connections"
let m_latency = Obs.Metrics.histogram "service/latency_ms"
let m_cancellations = Obs.Metrics.counter "service/cancellations"
let m_reclaim = Obs.Metrics.histogram "service/reclaim_ms"
let m_quota_denials = Obs.Metrics.counter "service/quota_denials"
let m_inflight_shed = Obs.Metrics.counter "service/inflight_shed"

(* Per-tenant queue-depth gauges, memoized by tenant name and capped so a
   churn of anonymous tenants cannot grow the metrics registry without
   bound — named tenants register first and win the slots. *)
let tenant_gauges : (string, Obs.Metrics.gauge) Hashtbl.t = Hashtbl.create 8
let max_tenant_gauges = 32

let tenant_gauge name =
  match Hashtbl.find_opt tenant_gauges name with
  | Some g -> Some g
  | None ->
    if Hashtbl.length tenant_gauges >= max_tenant_gauges then None
    else begin
      let g = Obs.Metrics.gauge ("service/tenant_queue_depth/" ^ name) in
      Hashtbl.add tenant_gauges name g;
      Some g
    end

type conn = {
  fd : Unix.file_descr;
  c_tenant : string;       (* anonymous per-connection tenant identity *)
  mutable rbuf : string;   (* unconsumed input *)
  mutable alive : bool;
  mutable closed : bool;   (* fd released; set exactly once *)
}

type pending = {
  p_conn : conn;
  p_id : int;
  p_query : string;
  p_tenant : string;
  p_job : P.response Pool.job;
  p_budget : Interrupt.budget;
  p_deadline : float;
  p_start : float;
  p_mutating : bool;       (* occupies the single-writer lane until retired *)
}

(* A mutating invocation parked behind the single-writer lane: already
   admitted and classified, but not submitted to the pool until the
   current writer's pending entry retires.  Readers are never parked. *)
type waiting = {
  w_conn : conn;
  w_id : int;
  w_query : string;
  w_tenant : string;
  w_prepared : Engine.prepared;
  w_deadline : float;
  w_start : float;
}

(* A cancelled job whose worker has not yet unwound: still counted
   against the pool until its state turns Done/Failed, at which point the
   worker is back in rotation and the reclaim latency is recorded — and
   the tenant is charged the execution's final consumption. *)
type reclaiming = {
  r_job : P.response Pool.job;
  r_query : string;
  r_tenant : string;
  r_budget : Interrupt.budget;
  r_since : float;
}

type t = {
  engine : Engine.t;
  cfg : config;
  repl : Repl.t;
  pool : P.response Pool.t;
  tenants : Tenant.t;
  listen_fd : Unix.file_descr;
  bound : endpoint;
  stop_flag : bool Atomic.t;
  mutable anon_seq : int;              (* anonymous-tenant name counter *)
  mutable conns : conn list;
  mutable pending : pending list;
  mutable reclaiming : reclaiming list;
  mutable writer_busy : bool;          (* a mutating job is in flight *)
  mutable writer_waiting : waiting list;  (* FIFO; bounded by queue_capacity *)
  mutable n_timeouts : int;
  mutable n_overloaded : int;
  mutable n_cancellations : int;
  mutable n_reclaimed : int;
  mutable n_quota_denied : int;
  mutable n_inflight_shed : int;
}

let create cfg engine =
  let domain, addr =
    match cfg.listen with
    | `Unix path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  (* A peer that disconnects with a response in flight must surface as
     EPIPE on the write (handled in [send]), not as a fatal SIGPIPE. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.listen with
   | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
   | `Unix _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound =
    match (cfg.listen, Unix.getsockname fd) with
    | `Tcp (host, _), Unix.ADDR_INET (_, port) -> `Tcp (host, port)
    | ep, _ -> ep
  in
  let pool =
    Pool.create ?workers:cfg.workers ~queue_capacity:cfg.queue_capacity
      ~per_tenant_capacity:(max 1 cfg.per_tenant_queue) ()
  in
  let tenants =
    Tenant.create ~now:(Faults.quota_now cfg.faults) ~weights:cfg.tenant_weights
      ~quota_steps:cfg.quota_steps ~quota_rows:cfg.quota_rows ()
  in
  let repl =
    Repl.create ~engine ~faults:cfg.faults ~replica_of:cfg.replica_of
      ~sync_replicas:cfg.sync_replicas ~sync_timeout_ms:cfg.sync_timeout_ms
      ~max_staleness_ms:cfg.max_staleness_ms ()
  in
  { engine; cfg; repl; pool; tenants; listen_fd = fd; bound; stop_flag = Atomic.make false;
    anon_seq = 0; conns = []; pending = []; reclaiming = []; writer_busy = false;
    writer_waiting = []; n_timeouts = 0; n_overloaded = 0;
    n_cancellations = 0; n_reclaimed = 0; n_quota_denied = 0; n_inflight_shed = 0 }

let endpoint t = t.bound
let stop t = Atomic.set t.stop_flag true

let now () = Unix.gettimeofday ()

(* The invocation's tenant: the frame's claim, else the connection's
   anonymous identity — so an unmodified client still lands in its own
   sub-queue rather than sharing one global bucket with every stranger. *)
let tenant_of conn (iv : P.invoke) =
  match iv.P.iv_tenant with Some s when s <> "" -> s | _ -> conn.c_tenant

(* Charge the tenant the execution's actual consumption, read from the
   retired budget's cumulative counters.  No-op when quotas are off. *)
let charge_budget t ~tenant budget =
  Tenant.charge t.tenants tenant ~steps:(Interrupt.steps budget) ~rows:(Interrupt.rows budget)

(* Quota-governed resource_limit responses carry the tenant's refill ETA
   so clients wait precisely instead of guessing a backoff.  Called after
   the charge, so the ETA reflects the spend that triggered it. *)
let decorate_quota t ~tenant resp =
  match resp with
  | P.Error (P.Resource_limit, msg, h) when h.P.h_retry_ms = None && Tenant.quota_active t.tenants ->
    P.Error (P.Resource_limit, msg, P.retry_hint (Tenant.retry_after_ms t.tenants tenant))
  | r -> r

let send t conn ~id resp =
  if conn.alive then
    if Faults.drop_frame t.cfg.faults then ()  (* injected: frame lost on the wire *)
    else
      try P.write_frame conn.fd (P.response_to_json ~id resp)
      with
      | Unix.Unix_error _ | Sys_error _ -> conn.alive <- false
      | Invalid_argument _ ->
        (* The result does not fit in a frame: substitute an error so the
           client is answered instead of stalled on a missing response. *)
        (try
           P.write_frame conn.fd
             (P.response_to_json ~id
                (P.Error (P.Internal, "response exceeds the frame size limit", P.no_hint)))
         with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false)

(* Cancel an in-flight job and track it until its worker unwinds — the
   cooperative-cancellation half of the deadline/disconnect paths. *)
let cancel_pending t (p : pending) ~at =
  t.n_cancellations <- t.n_cancellations + 1;
  Obs.Metrics.incr m_cancellations 1;
  Interrupt.cancel p.p_budget;
  t.reclaiming <-
    { r_job = p.p_job; r_query = p.p_query; r_tenant = p.p_tenant;
      r_budget = p.p_budget; r_since = at }
    :: t.reclaiming

(* Retire reclaiming entries whose job completed: the worker is back in
   rotation and the tenant is charged the final consumption.  The result
   (if any) is discarded — the requester was already answered when the
   cancellation was issued. *)
let sweep_reclaiming t =
  let tick_now = now () in
  t.reclaiming <-
    List.filter
      (fun r ->
        match Pool.state r.r_job with
        | Pool.Done _ | Pool.Failed _ ->
          t.n_reclaimed <- t.n_reclaimed + 1;
          Obs.Metrics.observe m_reclaim ((tick_now -. r.r_since) *. 1000.0);
          charge_budget t ~tenant:r.r_tenant r.r_budget;
          false
        | Pool.Queued | Pool.Running -> true)
      t.reclaiming

(* Release the fd exactly once.  [alive] and [closed] are distinct on
   purpose: a failed send marks the connection dead ([alive = false]) from
   wherever it happens, and the event loop later destroys it here. *)
let destroy_conn conn =
  conn.alive <- false;
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

let close_conn t conn =
  destroy_conn conn;
  (* Cancel this connection's in-flight jobs: nobody is left to answer,
     so reclaim the workers instead of letting them finish for nothing.
     Parked writers are simply dropped — they never reached the pool. *)
  let gone, still = List.partition (fun p -> p.p_conn == conn) t.pending in
  let at = now () in
  List.iter
    (fun p ->
      Tenant.record t.tenants p.p_tenant `Completed;
      cancel_pending t p ~at)
    gone;
  t.pending <- still;
  let parked, rest = List.partition (fun w -> w.w_conn == conn) t.writer_waiting in
  List.iter (fun w -> Tenant.record t.tenants w.w_tenant `Completed) parked;
  t.writer_waiting <- rest

let record_outcome ~query ~ms resp =
  Obs.Metrics.incr m_requests 1;
  (match resp with
   | P.Result { rs_cached = true; _ } -> Obs.Metrics.incr m_cache_hits 1
   | P.Result _ -> Obs.Metrics.incr m_cache_misses 1
   | P.Error (P.Timeout, _, _) -> Obs.Metrics.incr m_timeouts 1
   | P.Error (P.Overloaded, _, _) -> Obs.Metrics.incr m_overloaded 1
   | P.Error _ -> Obs.Metrics.incr m_errors 1
   | _ -> ());
  Obs.Metrics.observe m_latency ms;
  if Obs.Trace.enabled () then
    Obs.Trace.event "service/request"
      [ ("query", J.Str query);
        ("ms", J.Float ms);
        ( "outcome",
          J.Str
            (match resp with
             | P.Result { rs_cached; _ } -> if rs_cached then "hit" else "executed"
             | P.Error (code, _, _) -> P.err_code_to_string code
             | _ -> "ok") ) ]

let server_stats t =
  (* Per-tenant accounting merged with the pool's live queue state.  The
     identity every tenant satisfies: requests seen = admitted + ready +
     shed + quota_denials, and admitted = completed + in flight. *)
  let pool_rows = Pool.tenant_stats t.pool in
  let tenant_objs =
    List.map
      (fun (name, snap) ->
        let queued, deficit =
          match List.find_opt (fun (n, _, _) -> n = name) pool_rows with
          | Some (_, q, d) -> (q, d)
          | None -> (0, 0)
        in
        ( name,
          Tenant.snap_to_json
            ~extra:[ ("queued", J.Int queued); ("deficit", J.Int deficit) ]
            snap ))
      (Tenant.snapshot t.tenants)
  in
  [ ("connections", J.Int (List.length t.conns));
    ("pending", J.Int (List.length t.pending));
    ("queue_depth", J.Int (Pool.queue_depth t.pool));
    ("running", J.Int (Pool.running t.pool));
    ("workers", J.Int (Pool.workers t.pool));
    ("timeouts", J.Int t.n_timeouts);
    ("overloaded", J.Int t.n_overloaded);
    ("cancellations", J.Int t.n_cancellations);
    ("reclaimed", J.Int t.n_reclaimed);
    (* Cancelled jobs whose worker has not unwound yet; a healthy governor
       drives this back to 0 shortly after every cancellation. *)
    ("workers_leaked", J.Int (List.length t.reclaiming));
    (* Single-writer lane: at most one mutating job runs at a time; the
       rest wait here in FIFO order. *)
    ("writer_busy", J.Bool t.writer_busy);
    ("writer_waiting", J.Int (List.length t.writer_waiting));
    ("max_inflight", J.Int t.cfg.max_inflight);
    ("inflight_shed", J.Int t.n_inflight_shed);
    ("quota_denials", J.Int t.n_quota_denied);
    ("per_tenant_queue", J.Int t.cfg.per_tenant_queue);
    ("tenants", J.Obj tenant_objs);
    ("default_timeout_ms", J.Int t.cfg.default_timeout_ms) ]

(* Hand a prepared invocation to the pool and start tracking it.  Both the
   read path (directly from [handle_request]) and the writer lane (via
   [pump_writers]) land here; a mutating submission occupies the lane.
   [via_lane] marks a parked writer already counted admitted — a refusal
   now retires it (answered) rather than double-counting a shed. *)
let submit_job t conn ~id ~query ~tenant ~via_lane ~(prepared : Engine.prepared) ~deadline
    ~start =
  let faults = t.cfg.faults in
  let thunk () =
    Faults.tenant_entry faults ~tenant;
    Faults.worker_entry faults;
    prepared.Engine.pr_thunk ()
  in
  let refuse resp =
    t.n_overloaded <- t.n_overloaded + 1;
    Tenant.record t.tenants tenant (if via_lane then `Completed else `Shed);
    record_outcome ~query ~ms:0.0 resp;
    send t conn ~id resp
  in
  (* The job shares the budget's cancel flag, so flipping either stops
     both the queued job and the running execution. *)
  match
    Pool.submit
      ~cancel:(Interrupt.cancel_token prepared.Engine.pr_budget)
      ~tenant ~weight:(Tenant.weight t.tenants tenant) t.pool thunk
  with
  | Ok job ->
    if not via_lane then Tenant.record t.tenants tenant `Admitted;
    if prepared.Engine.pr_mutating then t.writer_busy <- true;
    t.pending <-
      { p_conn = conn; p_id = id; p_query = query; p_tenant = tenant; p_job = job;
        p_budget = prepared.Engine.pr_budget; p_deadline = deadline;
        p_start = start; p_mutating = prepared.Engine.pr_mutating }
      :: t.pending
  | Error `Overloaded -> refuse (P.Error (P.Overloaded, "admission queue full", P.no_hint))
  | Error `Tenant_overloaded ->
    (* The flooding tenant sheds its own backlog; other tenants' queues
       are untouched. *)
    refuse
      (P.Error
         ( P.Overloaded,
           Printf.sprintf "tenant %s queue full (%d)" tenant t.cfg.per_tenant_queue,
           P.no_hint ))
  | Error `Shutdown ->
    Tenant.record t.tenants tenant (if via_lane then `Completed else `Shed);
    send t conn ~id (P.Error (P.Shutting_down, "server stopping", P.no_hint))

(* Pop the writer lane after the in-flight writer retires.  Dead or
   already-expired waiters are answered/dropped without consuming the
   lane, so one stale entry cannot stall the queue behind it. *)
let rec pump_writers t =
  if not t.writer_busy then
    match t.writer_waiting with
    | [] -> ()
    | w :: rest ->
      t.writer_waiting <- rest;
      let tick_now = now () in
      if not w.w_conn.alive then begin
        Tenant.record t.tenants w.w_tenant `Completed;
        pump_writers t
      end
      else if tick_now >= w.w_deadline then begin
        t.n_timeouts <- t.n_timeouts + 1;
        Tenant.record t.tenants w.w_tenant `Completed;
        let resp =
          P.Error
            ( P.Timeout,
              Printf.sprintf "%s exceeded its deadline in the writer queue" w.w_query,
              P.no_hint )
        in
        record_outcome ~query:w.w_query ~ms:((tick_now -. w.w_start) *. 1000.0) resp;
        send t w.w_conn ~id:w.w_id resp;
        pump_writers t
      end
      else begin
        submit_job t w.w_conn ~id:w.w_id ~query:w.w_query ~tenant:w.w_tenant
          ~via_lane:true ~prepared:w.w_prepared ~deadline:w.w_deadline ~start:w.w_start;
        (* A failed submission (overloaded/shutdown) was answered inside
           [submit_job] and leaves the lane free: keep pumping. *)
        pump_writers t
      end

(* A follower's [Subscribe]: the hub takes the socket over.  Detach from
   the event loop first — [alive <- false] stops the frame-drain loop,
   [closed <- true] keeps the loop's close path off the fd — so that ack
   frames arriving on it are read by the hub, never by [on_readable].
   The fd goes back to blocking: the hub writes whole frames. *)
let handle_subscribe t conn ~id ~sub_version ~sub_epoch =
  conn.alive <- false;
  conn.closed <- true;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  (try Unix.clear_nonblock conn.fd with Unix.Unix_error _ -> ());
  let refuse resp =
    (try P.write_frame conn.fd (P.response_to_json ~id resp)
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  match
    Repl.handle_subscribe t.repl ~fd:conn.fd ~id ~version:sub_version ~epoch:sub_epoch
  with
  | `Subscribed -> ()
  | `Fenced e ->
    refuse
      (P.Error
         ( P.Fenced,
           Printf.sprintf "cannot serve the stream: this node stood down at epoch %d" e,
           P.no_hint ))
  | `Not_leader addr ->
    refuse (P.Error (P.Not_leader, "not the leader; subscribe to " ^ addr, P.leader_hint addr))

let handle_request t conn ~id (req : P.request) =
  match req with
  | P.Ping -> send t conn ~id P.Pong
  | P.Status_req -> send t conn ~id (P.Status (Repl.status t.repl))
  | P.Subscribe { sub_version; sub_epoch } -> handle_subscribe t conn ~id ~sub_version ~sub_epoch
  | P.Rep_ack _ ->
    (* Only meaningful on a subscribed (detached) connection, where the
       hub reads it — here it is a protocol misuse. *)
    send t conn ~id (P.Error (P.Bad_request, "rep-ack outside a subscription", P.no_hint))
  | P.Promote ->
    let ep, v = Repl.promote t.repl in
    send t conn ~id (P.Promoted { pm_epoch = ep; pm_version = v })
  | P.Follow addr -> (
    match Repl.follow t.repl addr with
    | Ok () -> send t conn ~id (P.Following addr)
    | Error msg -> send t conn ~id (P.Error (P.Bad_request, "follow: " ^ msg, P.no_hint)))
  | P.Install source -> send t conn ~id (Engine.install t.engine source)
  | P.List_queries -> send t conn ~id (Engine.list_queries t.engine)
  | P.Describe name -> send t conn ~id (Engine.describe t.engine name)
  | P.Drop name -> send t conn ~id (Engine.drop t.engine name)
  | P.Stats -> send t conn ~id (Engine.stats t.engine ~extra:(server_stats t))
  | P.Shutdown ->
    send t conn ~id P.Bye;
    stop t
  | P.Invoke iv ->
    let tenant = tenant_of conn iv in
    (* Fairness stopgap: one pipelining connection cannot occupy every
       worker (and the writer queue) while others starve. *)
    let inflight =
      List.fold_left (fun n p -> if p.p_conn == conn then n + 1 else n) 0 t.pending
      + List.fold_left (fun n w -> if w.w_conn == conn then n + 1 else n) 0
          t.writer_waiting
    in
    if inflight >= t.cfg.max_inflight then begin
      t.n_overloaded <- t.n_overloaded + 1;
      t.n_inflight_shed <- t.n_inflight_shed + 1;
      Obs.Metrics.incr m_inflight_shed 1;
      Tenant.record t.tenants tenant `Shed;
      let resp =
        P.Error
          ( P.Overloaded,
            Printf.sprintf "per-connection in-flight cap reached (%d)"
              t.cfg.max_inflight,
            P.no_hint )
      in
      record_outcome ~query:iv.P.iv_query ~ms:0.0 resp;
      send t conn ~id resp
    end
    else begin
      let t0 = now () in
      let tenant_limits =
        if Tenant.quota_active t.tenants then Some (Tenant.limits t.tenants tenant)
        else None
      in
      (* Staleness bound: a follower that has not heard from its leader
         within [max_staleness_ms] refuses reads with [stale] — a
         machine-readable cue the client's failover rotates on — rather
         than serve data of unknowable age.  Mutations are not gated
         here; they already get the [not_leader] redirect. *)
      let stale = Repl.stale_for_reads t.repl in
      let stale_resp () =
        P.Error
          ( P.Stale,
            Printf.sprintf "replica is stale: no leader contact within %dms"
              t.cfg.max_staleness_ms,
            P.no_hint )
      in
      match Engine.prepare_invoke ?tenant_limits t.engine iv with
      | `Ready (P.Result _) when stale ->
        let resp = stale_resp () in
        Tenant.record t.tenants tenant `Ready;
        record_outcome ~query:iv.P.iv_query ~ms:((now () -. t0) *. 1000.0) resp;
        send t conn ~id resp
      | `Ready resp ->
        (* Cache hits and immediate errors are answered inline: they never
           queue and never spend quota.  This is the degradation order —
           cheap reads keep flowing for a saturated or quota-exhausted
           tenant while its expensive executions shed. *)
        Tenant.record t.tenants tenant `Ready;
        record_outcome ~query:iv.P.iv_query ~ms:((now () -. t0) *. 1000.0) resp;
        send t conn ~id resp
      | `Run prepared when (not prepared.Engine.pr_mutating) && stale ->
        let resp = stale_resp () in
        Tenant.record t.tenants tenant `Ready;
        record_outcome ~query:iv.P.iv_query ~ms:((now () -. t0) *. 1000.0) resp;
        send t conn ~id resp
      | `Run prepared -> (
        match Tenant.admit t.tenants tenant with
        | `Denied retry_ms ->
          t.n_quota_denied <- t.n_quota_denied + 1;
          Obs.Metrics.incr m_quota_denials 1;
          Tenant.record t.tenants tenant `Quota_denied;
          let resp =
            P.Error
              ( P.Resource_limit,
                Printf.sprintf "tenant %s quota exhausted" tenant,
                P.retry_hint retry_ms )
          in
          record_outcome ~query:iv.P.iv_query ~ms:0.0 resp;
          send t conn ~id resp
        | `Ok ->
          let timeout_ms =
            match iv.P.iv_timeout_ms with
            | Some ms when ms > 0 -> ms
            | _ -> t.cfg.default_timeout_ms
          in
          let deadline = t0 +. (float_of_int timeout_ms /. 1000.0) in
          if prepared.Engine.pr_mutating
             && (t.writer_busy || t.writer_waiting <> []) then begin
            (* Lane occupied: park in FIFO order behind the in-flight writer
               (the non-empty-queue check keeps admission order fair). *)
            if List.length t.writer_waiting >= t.cfg.queue_capacity then begin
              t.n_overloaded <- t.n_overloaded + 1;
              Tenant.record t.tenants tenant `Shed;
              let resp = P.Error (P.Overloaded, "writer queue full", P.no_hint) in
              record_outcome ~query:iv.P.iv_query ~ms:0.0 resp;
              send t conn ~id resp
            end
            else begin
              Tenant.record t.tenants tenant `Admitted;
              t.writer_waiting <-
                t.writer_waiting
                @ [ { w_conn = conn; w_id = id; w_query = iv.P.iv_query;
                      w_tenant = tenant; w_prepared = prepared;
                      w_deadline = deadline; w_start = t0 } ]
            end
          end
          else
            submit_job t conn ~id ~query:iv.P.iv_query ~tenant ~via_lane:false
              ~prepared ~deadline ~start:t0)
    end

let handle_frame t conn = function
  | Result.Error msg ->
    (* A frame-level error — oversized length header or undecodable
       payload — leaves the stream unsynchronized (the next frame boundary
       cannot be trusted), so answer with a protocol error and close. *)
    send t conn ~id:0 (P.Error (P.Bad_request, msg, P.no_hint));
    close_conn t conn
  | Ok payload ->
    (match P.request_of_json payload with
     | Result.Error msg ->
       (* Bad envelope inside a well-delimited frame: the stream is still
          framed correctly, so the connection survives. *)
       send t conn ~id:0 (P.Error (P.Bad_request, msg, P.no_hint))
     | Ok (id, req) -> handle_request t conn ~id req)

let drain_conn_buffer t conn =
  let rec go pos =
    if not conn.alive then ()
    else
      match P.decode_frame conn.rbuf ~pos ~max_bytes:t.cfg.max_frame_bytes with
      | `Need_more ->
        if pos > 0 then conn.rbuf <- String.sub conn.rbuf pos (String.length conn.rbuf - pos)
      | `Frame (frame, next) ->
        handle_frame t conn frame;
        go next
  in
  go 0

let read_chunk_size = 65536

let on_readable t conn =
  Faults.before_read t.cfg.faults;
  let b = Bytes.create read_chunk_size in
  match Unix.read conn.fd b 0 read_chunk_size with
  | 0 -> close_conn t conn
  | n ->
    conn.rbuf <- conn.rbuf ^ Bytes.sub_string b 0 n;
    drain_conn_buffer t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if List.length t.conns >= t.cfg.max_connections then begin
        (* Shed the connection with an explanation rather than a raw close. *)
        (try
           P.write_frame fd
             (P.response_to_json ~id:0 (P.Error (P.Overloaded, "connection limit", P.no_hint)))
         with Unix.Unix_error _ | Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        t.anon_seq <- t.anon_seq + 1;
        t.conns <-
          { fd; c_tenant = Printf.sprintf "anon#%d" t.anon_seq; rbuf = "";
            alive = true; closed = false }
          :: t.conns;
        go ()
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* Retire one answered pending entry: tenant accounting first (charge the
   budget's actual consumption), then the response — decorated with the
   tenant's refill ETA when a quota drove it into Resource_limit. *)
let retire_pending t (p : pending) resp ~at =
  charge_budget t ~tenant:p.p_tenant p.p_budget;
  Tenant.record t.tenants p.p_tenant `Completed;
  let resp = decorate_quota t ~tenant:p.p_tenant resp in
  let ms = (at -. p.p_start) *. 1000.0 in
  record_outcome ~query:p.p_query ~ms resp;
  send t p.p_conn ~id:p.p_id resp

let sweep_pending t =
  let tick_now = now () in
  let still =
    List.filter
      (fun p ->
        if not p.p_conn.alive then begin
          (* Writer noticed the peer is gone (failed send): reclaim. *)
          Tenant.record t.tenants p.p_tenant `Completed;
          cancel_pending t p ~at:tick_now;
          false
        end
        else
          match Pool.state p.p_job with
          | Pool.Done resp ->
            retire_pending t p resp ~at:tick_now;
            false
          | Pool.Failed msg ->
            retire_pending t p (P.Error (P.Internal, msg, P.no_hint)) ~at:tick_now;
            false
          | Pool.Queued | Pool.Running ->
            if tick_now >= p.p_deadline then begin
              t.n_timeouts <- t.n_timeouts + 1;
              Tenant.record t.tenants p.p_tenant `Completed;
              let resp =
                P.Error
                  (P.Timeout, Printf.sprintf "%s exceeded its deadline" p.p_query, P.no_hint)
              in
              record_outcome ~query:p.p_query ~ms:((tick_now -. p.p_start) *. 1000.0) resp;
              send t p.p_conn ~id:p.p_id resp;
              (* Cancelled, not abandoned: the budget's flag is flipped and
                 the worker unwinds at its next checkpoint (tracked in
                 t.reclaiming until it does, then charged to the tenant). *)
              cancel_pending t p ~at:tick_now;
              false
            end
            else true)
      t.pending
  in
  t.pending <- still;
  (* Recomputing (rather than clearing on each retire branch) keeps the
     lane state correct no matter which path removed the mutating job. *)
  t.writer_busy <- List.exists (fun p -> p.p_mutating) t.pending

let set_tenant_gauges t =
  let rows = Pool.tenant_stats t.pool in
  List.iter
    (fun (name, depth, _) ->
      match tenant_gauge name with
      | Some g -> Obs.Metrics.set_gauge g (float_of_int depth)
      | None -> ())
    rows;
  (* Drained tenants' gauges drop back to zero. *)
  Hashtbl.iter
    (fun name g ->
      if not (List.exists (fun (n, _, _) -> n = name) rows) then
        Obs.Metrics.set_gauge g 0.0)
    tenant_gauges

let run t =
  let tick = 0.02 in
  while not (Atomic.get t.stop_flag) do
    (* A send failure only marks the connection dead; release its fd and
       cancel its work here, on the loop, exactly once. *)
    List.iter (fun c -> if not c.alive then close_conn t c) t.conns;
    t.conns <- List.filter (fun c -> not c.closed) t.conns;
    Obs.Metrics.set_gauge m_connections (float_of_int (List.length t.conns));
    Obs.Metrics.set_gauge m_queue_depth (float_of_int (Pool.queue_depth t.pool));
    set_tenant_gauges t;
    let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    let readable, _, _ =
      try Unix.select fds [] [] tick
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd readable then accept_ready t;
    List.iter
      (fun conn -> if conn.alive && List.memq conn.fd readable then on_readable t conn)
      t.conns;
    sweep_pending t;
    pump_writers t;
    sweep_reclaiming t;
    Repl.tick t.repl
  done;
  (* Drain: stop accepting, answer what the pool still finishes quickly,
     fail the rest, then join the workers. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.listen with
   | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | `Tcp _ -> ());
  (* Parked writers never reached the pool: answer and forget. *)
  List.iter
    (fun w ->
      Tenant.record t.tenants w.w_tenant `Completed;
      send t w.w_conn ~id:w.w_id (P.Error (P.Shutting_down, "server stopping", P.no_hint)))
    t.writer_waiting;
  t.writer_waiting <- [];
  List.iter
    (fun p ->
      Tenant.record t.tenants p.p_tenant `Completed;
      match Pool.state p.p_job with
      | Pool.Done resp -> send t p.p_conn ~id:p.p_id resp
      | _ ->
        send t p.p_conn ~id:p.p_id (P.Error (P.Shutting_down, "server stopping", P.no_hint));
        (* Cancel so Pool.shutdown's worker join is bounded by one
           checkpoint interval, not by the query's natural runtime. *)
        Interrupt.cancel p.p_budget)
    t.pending;
  t.pending <- [];
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  Repl.stop t.repl;
  Pool.shutdown ~drain:false t.pool
