(** Result cache for installed-query invocations.

    Keyed by the canonical string of (query name, normalized parameters,
    graph version): parameters are sorted by name and rendered through the
    protocol's value encoding, so two invocations that bind the same values
    in a different order share an entry, and a graph reload (version bump)
    orphans every prior entry without an explicit flush.

    LRU eviction over a fixed capacity.  All operations take an internal
    lock — worker domains populate the cache while the server's event loop
    reads it. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] defaults to 128 entries; a capacity of 0 disables storage
    (every lookup misses). *)

val key :
  query:string -> params:(string * Pgraph.Value.t) list -> graph_version:int ->
  plan_gen:int -> string
(** The canonical cache key.  [plan_gen] is the catalog's install
    generation for the query: reinstalling bumps it, orphaning every
    result computed under the previous definition without a separate
    invalidation step (no window where a new plan can be served an old
    plan's cached result). *)

val find : 'a t -> string -> 'a option
(** Records a hit or a miss, and refreshes recency on hit. *)

val store : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes) an entry, evicting the least recently used one
    when full. *)

val invalidate_query : 'a t -> string -> unit
(** Drops every entry of the named query (any params, any version) — used
    when a query is dropped or reinstalled. *)

val clear : 'a t -> unit
(** Drops everything (graph reload). *)

val size : 'a t -> int
val capacity : 'a t -> int

val stats : 'a t -> Obs.Json.t
(** [{"size","capacity","hits","misses","evictions","invalidations",
    "hit_rate"}] — hit_rate over the lookups seen so far (0.0 when none). *)
