(* LRU result cache.  Recency is a monotonically increasing stamp per entry;
   eviction scans for the minimum — O(capacity), which at the default 128 is
   noise next to query execution.  A mutex makes every operation atomic:
   worker domains store results while the event loop looks up and
   invalidates. *)

module J = Obs.Json

type 'a entry = {
  e_query : string;  (* owning query name, for targeted invalidation *)
  e_value : 'a;
  mutable e_stamp : int;
}

type 'a t = {
  m : Mutex.t;
  tbl : (string, 'a entry) Hashtbl.t;
  cap : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 128) () =
  { m = Mutex.create ();
    tbl = Hashtbl.create (max 16 capacity);
    cap = max 0 capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* The key embeds the query name with a separator that cannot appear in a
   JSON rendering, so [invalidate_query] can match on the prefix exactly.
   The plan generation is part of the key: a reinstalled query's stale
   results become unreachable the instant the catalog swaps the entry,
   with no separate invalidation step to race against. *)
let key ~query ~params ~graph_version ~plan_gen =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) params in
  let params_json =
    J.to_string (J.Obj (List.map (fun (n, v) -> (n, Protocol.value_to_json v)) sorted))
  in
  Printf.sprintf "%s\x00v%d.g%d\x00%s" query graph_version plan_gen params_json

let query_of_key k = match String.index_opt k '\x00' with
  | Some i -> String.sub k 0 i
  | None -> k

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some e ->
        e.e_stamp <- tick t;
        t.hits <- t.hits + 1;
        Some e.e_value
      | None ->
        t.misses <- t.misses + 1;
        None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.e_stamp -> acc
        | _ -> Some (k, e.e_stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let store t k v =
  locked t (fun () ->
      if t.cap > 0 then begin
        (match Hashtbl.find_opt t.tbl k with
         | Some _ -> Hashtbl.remove t.tbl k
         | None -> if Hashtbl.length t.tbl >= t.cap then evict_lru t);
        Hashtbl.replace t.tbl k { e_query = query_of_key k; e_value = v; e_stamp = tick t }
      end)

let invalidate_query t query =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold (fun k e acc -> if e.e_query = query then k :: acc else acc) t.tbl []
      in
      List.iter
        (fun k ->
          Hashtbl.remove t.tbl k;
          t.invalidations <- t.invalidations + 1)
        doomed)

let clear t =
  locked t (fun () ->
      t.invalidations <- t.invalidations + Hashtbl.length t.tbl;
      Hashtbl.reset t.tbl)

let size t = locked t (fun () -> Hashtbl.length t.tbl)
let capacity t = t.cap

let stats t =
  locked t (fun () ->
      let lookups = t.hits + t.misses in
      let rate = if lookups = 0 then 0.0 else float_of_int t.hits /. float_of_int lookups in
      J.Obj
        [ ("size", J.Int (Hashtbl.length t.tbl));
          ("capacity", J.Int t.cap);
          ("hits", J.Int t.hits);
          ("misses", J.Int t.misses);
          ("evictions", J.Int t.evictions);
          ("invalidations", J.Int t.invalidations);
          ("hit_rate", J.Float rate) ])
