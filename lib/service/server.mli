(** The concurrent GSQL service: a single-threaded event loop that speaks
    the length-prefixed protocol over a Unix-domain or TCP socket and runs
    invocations on a {!Pool} of worker domains.

    The loop owns every socket; workers execute query thunks and may
    record {!Obs} metrics and spans freely (the registries are
    domain-safe).  Per-request
    deadlines are enforced on the loop's select tick: a request whose
    deadline passes gets a [timeout] error immediately and its job is
    {e cancelled} — the server flips the execution budget's cancel flag
    ({!Interrupt}), the worker unwinds at its next governor checkpoint,
    and the job is tracked in a reclaim list until it does
    ([workers_leaked] in the stats response, 0 when every cancelled
    worker is back in rotation; [service/cancellations] counter and
    [service/reclaim_ms] histogram under tracing).  Client disconnects
    cancel that connection's in-flight jobs the same way.

    Fault injection ({!Faults}, [GSQL_FAULTS]) is wired into the worker
    entry (delay/crash), the outbound frame path (drop-frame) and the
    socket read path (slow-read) — see docs/SERVICE.md.

    Pipelining is allowed: a client may send several requests on one
    connection (up to [max_inflight] concurrent invocations); invocation
    responses come back in completion order, correlated by envelope id.

    Mutating invocations ({!Engine.prepared.pr_mutating}) are routed
    through a {e single-writer lane}: at most one runs at a time, the rest
    wait in a bounded FIFO ([writer_waiting] in stats) while read-only
    invocations keep flowing against the current snapshot.  Frame-level
    protocol errors (oversized length header, undecodable payload) are
    answered with [Bad_request] and close the connection, because the
    stream can no longer be re-synchronized; a bad envelope inside a
    well-formed frame only fails that request.

    {b Multi-tenancy} (docs/SERVICE.md): every invocation belongs to a
    tenant — the frame's [tenant] field, or an anonymous per-connection
    identity.  Admission is weighted-fair ({!Pool}'s deficit round robin
    over per-tenant bounded sub-queues, weights from [tenant_weights]);
    per-tenant token-bucket quotas ([quota_steps]/[quota_rows], {!Tenant})
    gate admission, cap each execution's {!Interrupt} budget, and are
    charged actual consumption when the job retires — exhaustion answers
    [Error (Resource_limit, _, Some retry_after_ms)].  Under saturation
    the degradation order is by cost: cache hits are answered inline and
    spend no quota, so a flooded or exhausted tenant's cheap reads keep
    flowing while its expensive executions shed first.  The stats
    response carries a ["tenants"] object (admitted / ready / shed /
    quota_denials / completed / remaining allowance / live queue depth
    and deficit per tenant). *)

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : endpoint;
  workers : int option;        (** [None] = {!Accum.Parallel.default_workers} *)
  queue_capacity : int;        (** global admission bound (queued, not running);
                                   also bounds the writer-lane FIFO *)
  per_tenant_queue : int;      (** per-tenant sub-queue bound: a flooding
                                   tenant sheds its own backlog at this depth
                                   while others keep queuing *)
  default_timeout_ms : int;    (** per-request deadline when the client sets none *)
  max_connections : int;
  max_inflight : int;          (** per-connection in-flight invocation cap; the
                                   overflow is refused with [Overloaded] (a
                                   retryable code) so one pipelining client
                                   cannot monopolize the pool *)
  max_frame_bytes : int;       (** inbound frames above this are a protocol
                                   error and close the connection (capped by
                                   {!Protocol.max_frame_bytes}) *)
  tenant_weights : (string * int) list;
                               (** DRR admission weights; unlisted tenants
                                   weigh 1 (floored at 1) *)
  quota_steps : int;           (** per-tenant step tokens per second (burst =
                                   one second's worth); 0 = no step quota *)
  quota_rows : int;            (** per-tenant row tokens per second; 0 = no
                                   row quota *)
  faults : Faults.t;           (** injection knobs; {!Faults.none} in production *)
  replica_of : string option;  (** follow this leader endpoint from boot
                                   ({!Protocol.endpoint_of_string} form):
                                   the node starts as a read replica and
                                   redirects mutations with [not_leader] *)
  sync_replicas : int;         (** follower acks required before a commit is
                                   acknowledged; 0 = asynchronous replication.
                                   A quorum miss (timeout, or no live
                                   followers at all — e.g. a restarted stale
                                   leader) answers [repl_lag]: the commit
                                   stands locally but is not confirmed
                                   replicated *)
  sync_timeout_ms : int;       (** quorum wait bound (default 1000) *)
  max_staleness_ms : int;      (** follower read bound: reads are refused
                                   with [stale] when the leader has not been
                                   heard from within this window; 0 = serve
                                   any age *)
}

val default_config : endpoint -> config
(** workers = cores, queue 64 (16 per tenant), timeout 30s, 64
    connections, 32 in-flight per connection, frames up to
    {!Protocol.max_frame_bytes}, no weights, no quotas, faults from
    [GSQL_FAULTS] (none when unset), no replication (standalone
    leader, async, no staleness bound). *)

type t

val create : config -> Engine.t -> t
(** Binds and listens (unlinking a stale Unix-socket path first).  The
    worker pool starts here, so clients may connect as soon as [create]
    returns even if {!run} starts later.  Raises [Unix.Unix_error] on bind
    failure. *)

val endpoint : t -> endpoint
(** The bound address — for [`Tcp] with port 0, the actual port. *)

val run : t -> unit
(** Blocks in the event loop until {!stop} is called or a [shutdown]
    request arrives, then closes every connection and joins the pool. *)

val stop : t -> unit
(** Thread/signal-safe: flips an atomic flag the loop observes on its next
    tick.  Idempotent. *)
