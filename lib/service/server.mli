(** The concurrent GSQL service: a single-threaded event loop that speaks
    the length-prefixed protocol over a Unix-domain or TCP socket and runs
    invocations on a {!Pool} of worker domains.

    The loop owns every socket and every {!Obs} touch point (metrics,
    trace events) — workers only execute query thunks — so the
    observability layer keeps its single-threaded contract.  Per-request
    deadlines are enforced on the loop's select tick: a request whose
    deadline passes gets a [timeout] error immediately and its job is
    abandoned (the worker still finishes it and populates the cache; it
    just has nobody to report to).

    Pipelining is allowed: a client may send several requests on one
    connection; invocation responses come back in completion order,
    correlated by envelope id. *)

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : endpoint;
  workers : int option;        (** [None] = {!Accum.Parallel.default_workers} *)
  queue_capacity : int;        (** admission bound (queued, not running) *)
  default_timeout_ms : int;    (** per-request deadline when the client sets none *)
  max_connections : int;
}

val default_config : endpoint -> config
(** workers = cores, queue 64, timeout 30s, 64 connections. *)

type t

val create : config -> Engine.t -> t
(** Binds and listens (unlinking a stale Unix-socket path first).  The
    worker pool starts here, so clients may connect as soon as [create]
    returns even if {!run} starts later.  Raises [Unix.Unix_error] on bind
    failure. *)

val endpoint : t -> endpoint
(** The bound address — for [`Tcp] with port 0, the actual port. *)

val run : t -> unit
(** Blocks in the event loop until {!stop} is called or a [shutdown]
    request arrives, then closes every connection and joins the pool. *)

val stop : t -> unit
(** Thread/signal-safe: flips an atomic flag the loop observes on its next
    tick.  Idempotent. *)
