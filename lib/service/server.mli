(** The concurrent GSQL service: a single-threaded event loop that speaks
    the length-prefixed protocol over a Unix-domain or TCP socket and runs
    invocations on a {!Pool} of worker domains.

    The loop owns every socket and every {!Obs} touch point (metrics,
    trace events) — workers only execute query thunks — so the
    observability layer keeps its single-threaded contract.  Per-request
    deadlines are enforced on the loop's select tick: a request whose
    deadline passes gets a [timeout] error immediately and its job is
    {e cancelled} — the server flips the execution budget's cancel flag
    ({!Interrupt}), the worker unwinds at its next governor checkpoint,
    and the job is tracked in a reclaim list until it does
    ([workers_leaked] in the stats response, 0 when every cancelled
    worker is back in rotation; [service/cancellations] counter and
    [service/reclaim_ms] histogram under tracing).  Client disconnects
    cancel that connection's in-flight jobs the same way.

    Fault injection ({!Faults}, [GSQL_FAULTS]) is wired into the worker
    entry (delay/crash), the outbound frame path (drop-frame) and the
    socket read path (slow-read) — see docs/SERVICE.md.

    Pipelining is allowed: a client may send several requests on one
    connection; invocation responses come back in completion order,
    correlated by envelope id. *)

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : endpoint;
  workers : int option;        (** [None] = {!Accum.Parallel.default_workers} *)
  queue_capacity : int;        (** admission bound (queued, not running) *)
  default_timeout_ms : int;    (** per-request deadline when the client sets none *)
  max_connections : int;
  faults : Faults.t;           (** injection knobs; {!Faults.none} in production *)
}

val default_config : endpoint -> config
(** workers = cores, queue 64, timeout 30s, 64 connections, faults from
    [GSQL_FAULTS] (none when unset). *)

type t

val create : config -> Engine.t -> t
(** Binds and listens (unlinking a stale Unix-socket path first).  The
    worker pool starts here, so clients may connect as soon as [create]
    returns even if {!run} starts later.  Raises [Unix.Unix_error] on bind
    failure. *)

val endpoint : t -> endpoint
(** The bound address — for [`Tcp] with port 0, the actual port. *)

val run : t -> unit
(** Blocks in the event loop until {!stop} is called or a [shutdown]
    request arrives, then closes every connection and joins the pool. *)

val stop : t -> unit
(** Thread/signal-safe: flips an atomic flag the loop observes on its next
    tick.  Idempotent. *)
