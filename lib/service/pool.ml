(* Domain worker pool.  One mutex/condvar pair guards the queue and
   lifecycle flags; each job carries its own mutex/condvar so state reads
   and awaits never contend with the queue lock.  Workers are real OCaml 5
   domains — the same machinery Accum.Parallel uses for intra-query
   parallelism, here applied across requests. *)

type 'a state =
  | Queued
  | Running
  | Done of 'a
  | Failed of string

type 'a job = {
  jm : Mutex.t;
  jc : Condition.t;  (* signalled on every state change *)
  j_cancel : bool Atomic.t;
  mutable jstate : 'a state;
}

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : ('a job * (unit -> 'a)) Queue.t;
  capacity : int;
  n_workers : int;
  mutable stopping : bool;
  mutable drain : bool;
  mutable n_running : int;
  mutable domains : unit Domain.t list;
}

(* Awaiter observability: every wakeup (condvar signal or backoff sleep
   expiry) is counted, so tests can assert the old poll-loop spin — one
   wakeup per millisecond — is gone. *)
let wakeups = Atomic.make 0
let await_wakeups () = Atomic.get wakeups
let m_wakeups = Obs.Metrics.counter "service/await_wakeups"

let set_state job st =
  Mutex.lock job.jm;
  job.jstate <- st;
  Condition.broadcast job.jc;
  Mutex.unlock job.jm

let state job =
  Mutex.lock job.jm;
  let st = job.jstate in
  Mutex.unlock job.jm;
  st

let cancel job = Atomic.set job.j_cancel true
let cancel_token job = job.j_cancel

let rec worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    if t.stopping && ((not t.drain) || Queue.is_empty t.queue) then None
    else if Queue.is_empty t.queue then begin
      Condition.wait t.nonempty t.m;
      next ()
    end
    else Some (Queue.pop t.queue)
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some (job, thunk) ->
    t.n_running <- t.n_running + 1;
    Mutex.unlock t.m;
    (* A job cancelled while still queued never runs — the submitter has
       already been answered; don't burn a worker on it. *)
    if Atomic.get job.j_cancel then set_state job (Failed "cancelled before start")
    else begin
      set_state job Running;
      let result = try Done (thunk ()) with e -> Failed (Printexc.to_string e) in
      set_state job result
    end;
    Mutex.lock t.m;
    t.n_running <- t.n_running - 1;
    Mutex.unlock t.m;
    worker_loop t

let create ?workers ?(queue_capacity = 64) () =
  let n_workers =
    match workers with
    | Some w -> max 1 w
    | None -> Accum.Parallel.default_workers max_int
  in
  let t =
    { m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity = max 1 queue_capacity;
      n_workers;
      stopping = false;
      drain = true;
      n_running = 0;
      domains = [] }
  in
  t.domains <- List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit ?cancel t thunk =
  Mutex.lock t.m;
  let r =
    if t.stopping then Error `Shutdown
    else if Queue.length t.queue >= t.capacity then Error `Overloaded
    else begin
      let job =
        { jm = Mutex.create ();
          jc = Condition.create ();
          j_cancel = (match cancel with Some c -> c | None -> Atomic.make false);
          jstate = Queued }
      in
      Queue.push (job, thunk) t.queue;
      Condition.signal t.nonempty;
      Ok job
    end
  in
  Mutex.unlock t.m;
  r

(* No busy-wait: the no-deadline path blocks on the job's condvar (woken
   only by set_state); the deadline path — the stdlib has no timed
   condition wait — sleeps with exponential backoff, 1 ms doubling to
   50 ms, never exceeding the remaining time.  Either way the wakeup
   count is O(log timeout), not O(timeout / 1 ms). *)
let await ?timeout_ms job =
  let count () =
    Atomic.incr wakeups;
    Obs.Metrics.incr m_wakeups 1
  in
  match timeout_ms with
  | None ->
    Mutex.lock job.jm;
    while (match job.jstate with Done _ | Failed _ -> false | _ -> true) do
      Condition.wait job.jc job.jm;
      count ()
    done;
    let st = job.jstate in
    Mutex.unlock job.jm;
    st
  | Some ms ->
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
    let rec go backoff =
      match state job with
      | (Done _ | Failed _) as st -> st
      | st ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then st
        else begin
          Unix.sleepf (Float.min backoff remaining);
          count ();
          go (Float.min (backoff *. 2.0) 0.05)
        end
    in
    go 0.001

let queue_depth t =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let running t =
  Mutex.lock t.m;
  let n = t.n_running in
  Mutex.unlock t.m;
  n

let workers t = t.n_workers

let shutdown ?(drain = true) t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  t.drain <- drain;
  let orphans =
    if drain then []
    else begin
      let js = Queue.fold (fun acc (job, _) -> job :: acc) [] t.queue in
      Queue.clear t.queue;
      js
    end
  in
  Condition.broadcast t.nonempty;
  let domains = t.domains in
  if not already then t.domains <- [];
  Mutex.unlock t.m;
  List.iter (fun job -> set_state job (Failed "pool shutdown")) orphans;
  if not already then List.iter Domain.join domains
