(* Domain worker pool.  One mutex/condvar pair guards the queue and
   lifecycle flags; each job carries its own mutex so state reads never
   contend with the queue lock.  Workers are real OCaml 5 domains — the
   same machinery Accum.Parallel uses for intra-query parallelism, here
   applied across requests. *)

type 'a state =
  | Queued
  | Running
  | Done of 'a
  | Failed of string

type 'a job = {
  jm : Mutex.t;
  mutable jstate : 'a state;
}

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : ('a job * (unit -> 'a)) Queue.t;
  capacity : int;
  n_workers : int;
  mutable stopping : bool;
  mutable drain : bool;
  mutable n_running : int;
  mutable domains : unit Domain.t list;
}

let set_state job st =
  Mutex.lock job.jm;
  job.jstate <- st;
  Mutex.unlock job.jm

let state job =
  Mutex.lock job.jm;
  let st = job.jstate in
  Mutex.unlock job.jm;
  st

let rec worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    if t.stopping && ((not t.drain) || Queue.is_empty t.queue) then None
    else if Queue.is_empty t.queue then begin
      Condition.wait t.nonempty t.m;
      next ()
    end
    else Some (Queue.pop t.queue)
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some (job, thunk) ->
    t.n_running <- t.n_running + 1;
    Mutex.unlock t.m;
    set_state job Running;
    let result = try Done (thunk ()) with e -> Failed (Printexc.to_string e) in
    set_state job result;
    Mutex.lock t.m;
    t.n_running <- t.n_running - 1;
    Mutex.unlock t.m;
    worker_loop t

let create ?workers ?(queue_capacity = 64) () =
  let n_workers =
    match workers with
    | Some w -> max 1 w
    | None -> Accum.Parallel.default_workers max_int
  in
  let t =
    { m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity = max 1 queue_capacity;
      n_workers;
      stopping = false;
      drain = true;
      n_running = 0;
      domains = [] }
  in
  t.domains <- List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t thunk =
  Mutex.lock t.m;
  let r =
    if t.stopping then Error `Shutdown
    else if Queue.length t.queue >= t.capacity then Error `Overloaded
    else begin
      let job = { jm = Mutex.create (); jstate = Queued } in
      Queue.push (job, thunk) t.queue;
      Condition.signal t.nonempty;
      Ok job
    end
  in
  Mutex.unlock t.m;
  r

let await ?timeout_ms job =
  let deadline =
    match timeout_ms with
    | None -> infinity
    | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
  in
  let rec go () =
    match state job with
    | (Done _ | Failed _) as st -> st
    | st ->
      if Unix.gettimeofday () >= deadline then st
      else begin
        Unix.sleepf 0.001;
        go ()
      end
  in
  go ()

let queue_depth t =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let running t =
  Mutex.lock t.m;
  let n = t.n_running in
  Mutex.unlock t.m;
  n

let workers t = t.n_workers

let shutdown ?(drain = true) t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  t.drain <- drain;
  let orphans =
    if drain then []
    else begin
      let js = Queue.fold (fun acc (job, _) -> job :: acc) [] t.queue in
      Queue.clear t.queue;
      js
    end
  in
  Condition.broadcast t.nonempty;
  let domains = t.domains in
  if not already then t.domains <- [];
  Mutex.unlock t.m;
  List.iter (fun job -> set_state job (Failed "pool shutdown")) orphans;
  if not already then List.iter Domain.join domains
