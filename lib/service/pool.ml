(* Domain worker pool with deficit-round-robin tenant fairness.

   One mutex/condvar pair guards the tenant queues and lifecycle flags;
   each job carries its own mutex/condvar so state reads and awaits never
   contend with the queue lock.  Workers are real OCaml 5 domains — the
   same machinery Accum.Parallel uses for intra-query parallelism, here
   applied across requests.

   Admission is two-level: every tenant gets its own bounded sub-queue
   (so a flooding tenant fills and sheds its OWN backlog), and a global
   bound backstops total memory.  Dispatch is deficit round-robin with
   unit job cost: a ring of backlogged tenants, each visit granting the
   tenant's weight in deficit and serving that many jobs before rotating.
   With weights a=2,b=1 and both backlogged, completion order is
   A A B A A B … — a heavy tenant can saturate its own share but never
   starve a light one. *)

type 'a state =
  | Queued
  | Running
  | Done of 'a
  | Failed of string

type 'a job = {
  jm : Mutex.t;
  jc : Condition.t;  (* signalled on every state change *)
  j_cancel : bool Atomic.t;
  mutable jstate : 'a state;
}

(* Per-tenant sub-queue.  Exists only while backlogged: created on the
   first queued job, removed when the last one is served, so idle
   anonymous tenants cost nothing. *)
type 'a tq = {
  tq_jobs : ('a job * (unit -> 'a)) Queue.t;
  tq_weight : int;
  mutable tq_deficit : int;
}

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  tenants : (string, 'a tq) Hashtbl.t;
  ring : string Queue.t;  (* backlogged tenants awaiting a DRR visit *)
  mutable current : string option;  (* tenant being served this visit *)
  mutable total_queued : int;
  capacity : int;  (* global bound across all tenants *)
  per_tenant_capacity : int;
  n_workers : int;
  mutable stopping : bool;
  mutable drain : bool;
  mutable n_running : int;
  mutable domains : unit Domain.t list;
}

(* Awaiter observability: every wakeup (condvar signal or backoff sleep
   expiry) is counted, so tests can assert the old poll-loop spin — one
   wakeup per millisecond — is gone. *)
let wakeups = Atomic.make 0
let await_wakeups () = Atomic.get wakeups
let m_wakeups = Obs.Metrics.counter "service/await_wakeups"

let set_state job st =
  Mutex.lock job.jm;
  job.jstate <- st;
  Condition.broadcast job.jc;
  Mutex.unlock job.jm

let state job =
  Mutex.lock job.jm;
  let st = job.jstate in
  Mutex.unlock job.jm;
  st

let cancel job = Atomic.set job.j_cancel true
let cancel_token job = job.j_cancel

(* DRR pop.  Caller holds t.m and has checked total_queued > 0.
   Invariant: a backlogged tenant's name is either in the ring or is
   [t.current], never both; tenants leave the table when they drain. *)
let rec drr_pop t =
  match t.current with
  | Some name -> (
    match Hashtbl.find_opt t.tenants name with
    | None ->
      t.current <- None;
      drr_pop t
    | Some q ->
      let item = Queue.pop q.tq_jobs in
      t.total_queued <- t.total_queued - 1;
      q.tq_deficit <- q.tq_deficit - 1;
      if Queue.is_empty q.tq_jobs then begin
        (* Drained: drop the tenant; deficit does not carry over. *)
        t.current <- None;
        Hashtbl.remove t.tenants name
      end
      else if q.tq_deficit < 1 then begin
        (* Visit's share spent: rotate to the ring tail. *)
        t.current <- None;
        q.tq_deficit <- 0;
        Queue.push name t.ring
      end;
      item)
  | None ->
    let name = Queue.pop t.ring in
    (match Hashtbl.find_opt t.tenants name with
    | None -> ()  (* drained under a previous visit; skip *)
    | Some q ->
      q.tq_deficit <- q.tq_deficit + q.tq_weight;
      t.current <- Some name);
    drr_pop t

let rec worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    if t.stopping && ((not t.drain) || t.total_queued = 0) then None
    else if t.total_queued = 0 then begin
      Condition.wait t.nonempty t.m;
      next ()
    end
    else Some (drr_pop t)
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some (job, thunk) ->
    t.n_running <- t.n_running + 1;
    Mutex.unlock t.m;
    (* A job cancelled while still queued never runs — the submitter has
       already been answered; don't burn a worker on it. *)
    if Atomic.get job.j_cancel then set_state job (Failed "cancelled before start")
    else begin
      set_state job Running;
      let result = try Done (thunk ()) with e -> Failed (Printexc.to_string e) in
      set_state job result
    end;
    Mutex.lock t.m;
    t.n_running <- t.n_running - 1;
    Mutex.unlock t.m;
    worker_loop t

let create ?workers ?(queue_capacity = 64) ?per_tenant_capacity () =
  let n_workers =
    match workers with
    | Some w -> max 1 w
    | None -> Accum.Parallel.default_workers max_int
  in
  let capacity = max 1 queue_capacity in
  let t =
    { m = Mutex.create ();
      nonempty = Condition.create ();
      tenants = Hashtbl.create 16;
      ring = Queue.create ();
      current = None;
      total_queued = 0;
      capacity;
      per_tenant_capacity =
        (match per_tenant_capacity with Some c -> max 1 c | None -> capacity);
      n_workers;
      stopping = false;
      drain = true;
      n_running = 0;
      domains = [] }
  in
  t.domains <- List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit ?cancel ?(tenant = "") ?(weight = 1) t thunk =
  Mutex.lock t.m;
  let r =
    if t.stopping then Error `Shutdown
    else if t.total_queued >= t.capacity then Error `Overloaded
    else begin
      let q =
        match Hashtbl.find_opt t.tenants tenant with
        | Some q -> Some q
        | None ->
          if t.total_queued = 0 && t.current = None && not (Queue.is_empty t.ring) then
            (* All queues drained: stale ring names carry no state; start
               the round fresh so a returning tenant isn't skipped. *)
            Queue.clear t.ring;
          let q = { tq_jobs = Queue.create (); tq_weight = max 1 weight; tq_deficit = 0 } in
          Hashtbl.add t.tenants tenant q;
          Queue.push tenant t.ring;
          Some q
      in
      match q with
      | Some q when Queue.length q.tq_jobs >= t.per_tenant_capacity ->
        (* The tenant sheds its own backlog; others are unaffected. *)
        Error `Tenant_overloaded
      | Some q ->
        let job =
          { jm = Mutex.create ();
            jc = Condition.create ();
            j_cancel = (match cancel with Some c -> c | None -> Atomic.make false);
            jstate = Queued }
        in
        Queue.push (job, thunk) q.tq_jobs;
        t.total_queued <- t.total_queued + 1;
        Condition.signal t.nonempty;
        Ok job
      | None -> assert false
    end
  in
  Mutex.unlock t.m;
  r

(* No busy-wait: the no-deadline path blocks on the job's condvar (woken
   only by set_state); the deadline path — the stdlib has no timed
   condition wait — sleeps with exponential backoff, 1 ms doubling to
   50 ms, never exceeding the remaining time.  Either way the wakeup
   count is O(log timeout), not O(timeout / 1 ms). *)
let await ?timeout_ms job =
  let count () =
    Atomic.incr wakeups;
    Obs.Metrics.incr m_wakeups 1
  in
  match timeout_ms with
  | None ->
    Mutex.lock job.jm;
    while (match job.jstate with Done _ | Failed _ -> false | _ -> true) do
      Condition.wait job.jc job.jm;
      count ()
    done;
    let st = job.jstate in
    Mutex.unlock job.jm;
    st
  | Some ms ->
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
    let rec go backoff =
      match state job with
      | (Done _ | Failed _) as st -> st
      | st ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then st
        else begin
          Unix.sleepf (Float.min backoff remaining);
          count ();
          go (Float.min (backoff *. 2.0) 0.05)
        end
    in
    go 0.001

let queue_depth t =
  Mutex.lock t.m;
  let n = t.total_queued in
  Mutex.unlock t.m;
  n

let tenant_stats t =
  Mutex.lock t.m;
  let rows =
    Hashtbl.fold
      (fun name q acc -> (name, Queue.length q.tq_jobs, q.tq_deficit) :: acc)
      t.tenants []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Mutex.unlock t.m;
  rows

let running t =
  Mutex.lock t.m;
  let n = t.n_running in
  Mutex.unlock t.m;
  n

let workers t = t.n_workers

let shutdown ?(drain = true) t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  t.drain <- drain;
  let orphans =
    if drain then []
    else begin
      let js =
        Hashtbl.fold
          (fun _ q acc -> Queue.fold (fun acc (job, _) -> job :: acc) acc q.tq_jobs)
          t.tenants []
      in
      Hashtbl.reset t.tenants;
      Queue.clear t.ring;
      t.current <- None;
      t.total_queued <- 0;
      js
    end
  in
  Condition.broadcast t.nonempty;
  let domains = t.domains in
  if not already then t.domains <- [];
  Mutex.unlock t.m;
  List.iter (fun job -> set_state job (Failed "pool shutdown")) orphans;
  if not already then List.iter Domain.join domains
