exception Injected_fault of string

let () =
  Printexc.register_printer (function
    | Injected_fault what -> Some (Printf.sprintf "Injected_fault(%s)" what)
    | _ -> None)

type t = {
  delay_worker_ms : int;  (* 0 = off *)
  crash_every : int;  (* 0 = off; else every Nth worker execution raises *)
  drop_frame_every : int;  (* 0 = off; else every Nth response frame is dropped *)
  slow_read_ms : int;  (* 0 = off *)
  short_write_every : int;  (* 0 = off; else every Nth WAL append is cut short *)
  torn_record_every : int;  (* 0 = off; else every Nth WAL append is corrupted *)
  fsync_fail_every : int;  (* 0 = off; else every Nth WAL fsync fails *)
  tenant_flood_ms : int;  (* 0 = off; else tenant "flood" executions sleep MS *)
  quota_skew_ms : int;  (* 0 = off; else alternate quota-clock reads lag MS *)
  repl_drop_every : int;  (* 0 = off; else every Nth replication send is dropped *)
  repl_partition_from : int;  (* 0 = off; else sends >= N all drop (partition) *)
  follower_stall_ms : int;  (* 0 = off; else the follower stalls MS per batch *)
  n_worker : int Atomic.t;  (* worker executions seen (crash counter) *)
  n_frames : int Atomic.t;  (* outbound frames seen (drop counter) *)
  n_short : int Atomic.t;  (* WAL appends seen (short-write counter) *)
  n_torn : int Atomic.t;  (* WAL appends seen (torn-record counter) *)
  n_fsync : int Atomic.t;  (* WAL appends seen (fsync-fail counter) *)
  n_skew : int Atomic.t;  (* quota-clock reads seen (skew alternator) *)
  n_repl : int Atomic.t;  (* replication sends seen (drop + partition counter) *)
}

let make ?(delay_worker_ms = 0) ?(crash_every = 0) ?(drop_frame_every = 0) ?(slow_read_ms = 0)
    ?(short_write_every = 0) ?(torn_record_every = 0) ?(fsync_fail_every = 0)
    ?(tenant_flood_ms = 0) ?(quota_skew_ms = 0) ?(repl_drop_every = 0)
    ?(repl_partition_from = 0) ?(follower_stall_ms = 0) () =
  { delay_worker_ms;
    crash_every;
    drop_frame_every;
    slow_read_ms;
    short_write_every;
    torn_record_every;
    fsync_fail_every;
    tenant_flood_ms;
    quota_skew_ms;
    repl_drop_every;
    repl_partition_from;
    follower_stall_ms;
    n_worker = Atomic.make 0;
    n_frames = Atomic.make 0;
    n_short = Atomic.make 0;
    n_torn = Atomic.make 0;
    n_fsync = Atomic.make 0;
    n_skew = Atomic.make 0;
    n_repl = Atomic.make 0 }

let none = make ()

let is_none t =
  t.delay_worker_ms = 0 && t.crash_every = 0 && t.drop_frame_every = 0 && t.slow_read_ms = 0
  && t.short_write_every = 0 && t.torn_record_every = 0 && t.fsync_fail_every = 0
  && t.tenant_flood_ms = 0 && t.quota_skew_ms = 0 && t.repl_drop_every = 0
  && t.repl_partition_from = 0 && t.follower_stall_ms = 0

let to_string t =
  let knobs =
    List.filter_map
      (fun (k, v) -> if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
      [ ("delay-in-worker", t.delay_worker_ms);
        ("crash-in-worker", t.crash_every);
        ("drop-frame", t.drop_frame_every);
        ("slow-read", t.slow_read_ms);
        ("short-write", t.short_write_every);
        ("torn-record", t.torn_record_every);
        ("fsync-fail", t.fsync_fail_every);
        ("tenant-flood", t.tenant_flood_ms);
        ("quota-clock-skew", t.quota_skew_ms);
        ("repl-drop-batch", t.repl_drop_every);
        ("repl-partition", t.repl_partition_from);
        ("follower-stall", t.follower_stall_ms) ]
  in
  String.concat "," knobs

let parse spec =
  let spec = String.trim spec in
  if spec = "" then Ok none
  else
    let parts = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok acc
      | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "fault knob %S: expected knob=value" part)
        | Some i -> (
          let k = String.trim (String.sub part 0 i) in
          let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
          match int_of_string_opt v with
          | Some n when n >= 0 -> (
            match k with
            | "delay-in-worker" -> go { acc with delay_worker_ms = n } rest
            | "crash-in-worker" -> go { acc with crash_every = n } rest
            | "drop-frame" -> go { acc with drop_frame_every = n } rest
            | "slow-read" -> go { acc with slow_read_ms = n } rest
            | "short-write" -> go { acc with short_write_every = n } rest
            | "torn-record" -> go { acc with torn_record_every = n } rest
            | "fsync-fail" -> go { acc with fsync_fail_every = n } rest
            | "tenant-flood" -> go { acc with tenant_flood_ms = n } rest
            | "quota-clock-skew" -> go { acc with quota_skew_ms = n } rest
            | "repl-drop-batch" -> go { acc with repl_drop_every = n } rest
            | "repl-partition" -> go { acc with repl_partition_from = n } rest
            | "follower-stall" -> go { acc with follower_stall_ms = n } rest
            | _ -> Error (Printf.sprintf "unknown fault knob %S" k))
          | _ ->
            Error (Printf.sprintf "fault knob %S: value must be a non-negative integer" part)))
    in
    go (make ()) parts

let from_env () =
  match Sys.getenv_opt "GSQL_FAULTS" with
  | None -> none
  | Some spec -> (
    match parse spec with
    | Ok t -> t
    | Error msg ->
      Printf.eprintf "GSQL_FAULTS ignored: %s\n%!" msg;
      none)

(* Nth-occurrence check: atomically count occurrences, fire on multiples
   of [every] — deterministic under concurrency up to interleaving. *)
let nth_hit counter every =
  every > 0 && (Atomic.fetch_and_add counter 1 + 1) mod every = 0

let worker_entry t =
  if t.delay_worker_ms > 0 then Unix.sleepf (float_of_int t.delay_worker_ms /. 1000.0);
  if nth_hit t.n_worker t.crash_every then
    raise (Injected_fault (Printf.sprintf "crash-in-worker (execution %d)" (Atomic.get t.n_worker)))

let drop_frame t = nth_hit t.n_frames t.drop_frame_every

let flood_tenant = "flood"

let tenant_entry t ~tenant =
  if t.tenant_flood_ms > 0 && tenant = flood_tenant then
    Unix.sleepf (float_of_int t.tenant_flood_ms /. 1000.0)

(* Non-monotonic quota clock: every other read lags [quota_skew_ms]
   behind real time, so refill arithmetic sees negative deltas — the
   bucket must clamp them (never un-refill, never double-refill when the
   clock recovers).  Deterministic: reads alternate true/skewed. *)
let quota_now t () =
  let now = Unix.gettimeofday () in
  if t.quota_skew_ms > 0 && Atomic.fetch_and_add t.n_skew 1 land 1 = 1 then
    now -. (float_of_int t.quota_skew_ms /. 1000.0)
  else now

let before_read t =
  if t.slow_read_ms > 0 then Unix.sleepf (float_of_int t.slow_read_ms /. 1000.0)

(* Replication-path faults share one send counter so a spec like
   repl-drop-batch=3,repl-partition=10 drops sends 3,6,9 and then
   everything from the 10th on — a lossy link that finally partitions.
   The drop is on the leader's side: the follower sees a gap and
   recovers by resubscribing (catch-up), which is exactly the path
   under test. *)
let repl_send_dropped ?(stream = false) t =
  if t.repl_drop_every = 0 && t.repl_partition_from = 0 then false
  else if stream then
    let n = Atomic.fetch_and_add t.n_repl 1 + 1 in
    (t.repl_partition_from > 0 && n >= t.repl_partition_from)
    || (t.repl_drop_every > 0 && n mod t.repl_drop_every = 0)
  else
    (* Handshake, catch-up and heartbeat sends only fall to the
       partition: if the Nth-drop knob also hit the recovery machinery,
       a deterministic drop cycle could lock step with the resubscribe
       loop and never converge — the fault would test nothing but
       itself. *)
    t.repl_partition_from > 0 && Atomic.get t.n_repl + 1 >= t.repl_partition_from

let follower_stall t =
  if t.follower_stall_ms > 0 then Unix.sleepf (float_of_int t.follower_stall_ms /. 1000.0)

(* The store stays independent of this module: disk faults travel as a
   [Store.Wal.hooks] record built from the spec's counters.  Each counter
   tracks appends independently, so e.g. short-write=2,fsync-fail=3 hits
   appends 2,4,… and 3,6,… deterministically (short-write wins a tie). *)
let wal_hooks t =
  { Store.Wal.on_append =
      (fun () ->
        let short = nth_hit t.n_short t.short_write_every in
        let torn = nth_hit t.n_torn t.torn_record_every in
        let fsync = nth_hit t.n_fsync t.fsync_fail_every in
        if short then Some `Short_write
        else if torn then Some `Torn_record
        else if fsync then Some `Fsync_fail
        else None) }
