(* Service engine: catalog + graph + result cache.

   The division of labor with Server: the engine owns everything about
   *what* a request means (catalog lookup, parameter validation, cache
   policy, execution); the server owns *when* it runs (admission, timeouts,
   connection lifecycle).  prepare_invoke is the seam: resolution happens on
   the coordinator thread, execution in the returned thunk wherever the
   caller likes. *)

module J = Obs.Json
module P = Protocol

(* Replication role (docs/DURABILITY.md).  [`Leader] accepts writes and
   (when a publisher hook is set) streams committed batches to followers.
   [`Follower addr] applies the leader's stream via {!apply_batch} and
   refuses client mutations with a redirect to [addr].  [`Fenced e] is a
   deposed leader: it observed epoch [e] above its own and stood down —
   writes are refused until an operator re-points it ([Follow]) or
   promotes it afresh. *)
type role = [ `Leader | `Follower of string | `Fenced of int ]

type t = {
  catalog : Gsql.Catalog.t;
  cache : P.exec_result Cache.t;
  semantics : Pathsem.Semantics.t option;
  limits : Interrupt.limits;  (* governor defaults; iv_timeout_ms overrides the deadline *)
  lock : Mutex.t;  (* guards graph/version swaps and the counters *)
  write_lock : Mutex.t;
  (* The single-writer lane's backstop: at most one mutating execution
     prepares a new graph version at a time.  The server keeps mutating
     jobs queued so workers don't pile up here, but correctness never
     depends on that routing. *)
  persist : Store.Persist.t option;  (* durability; None = memory-only *)
  shards : int;
  (* Sharded execution: when >= 2, read-path invocations run over a
     hash-partitioned view of the published graph (BSP supersteps for
     path matching, per-shard ACCUM partials for shard-safe plans) with
     bit-identical results — docs/SHARDING.md. *)
  mutable partition : (int * Shard.Partition.t) option;
  (* Version-memoized partition of the published graph; rebuilt lazily
     after every commit/reload.  Never used for mutating executions
     (those run against an unpublished clone). *)
  mutable interp : bool;
  (* Escape hatch: execute installed queries through the Eval oracle
     instead of their compiled plans (GSQL_INTERP=1, or set_interp for
     the interpreter-vs-compiled ablation). *)
  mutable graph : Pgraph.Graph.t;
  mutable version : int;
  mutable read_only : string option;  (* Some reason => mutations refused *)
  mutable role : role;
  mutable publisher : (Store.Codec.batch -> [ `Acked | `Lagging of string ]) option;
  (* Replication hook: called under the write lock after every committed
     batch is published locally.  [`Lagging msg] means the synchronous-
     replication quorum did not confirm — the commit stands locally but
     the client is answered [Repl_lag] instead of success. *)
  mutable n_invocations : int;
  mutable n_executed : int;
  mutable n_errors : int;
  mutable n_interrupted : int;
  mutable n_commits : int;
  mutable n_wal_errors : int;
}

type prepared = {
  pr_budget : Interrupt.budget;
  pr_mutating : bool;
  pr_thunk : unit -> P.response;
}

let create ?(cache_capacity = 128) ?semantics ?(limits = Interrupt.no_limits) ?persist
    ?(shards = 1) ?(version = 0) ~graph () =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  { catalog = Gsql.Catalog.create ();
    cache = Cache.create ~capacity:cache_capacity ();
    semantics;
    limits;
    lock = Mutex.create ();
    write_lock = Mutex.create ();
    persist;
    shards;
    partition = None;
    interp =
      (match Sys.getenv_opt "GSQL_INTERP" with
       | Some ("1" | "true" | "yes") -> true
       | _ -> false);
    graph;
    version;
    read_only = None;
    role = `Leader;
    publisher = None;
    n_invocations = 0;
    n_executed = 0;
    n_errors = 0;
    n_interrupted = 0;
    n_commits = 0;
    n_wal_errors = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let graph t = locked t (fun () -> t.graph)
let graph_version t = locked t (fun () -> t.version)
let published t = locked t (fun () -> (t.graph, t.version))
let read_only t = locked t (fun () -> t.read_only)
let persistent t = t.persist <> None

let set_interp t b = locked t (fun () -> t.interp <- b)
let use_interp t = locked t (fun () -> t.interp)
let shard_count t = t.shards

let role t = locked t (fun () -> t.role)
let set_role t r = locked t (fun () -> t.role <- r)
let set_publisher t f = locked t (fun () -> t.publisher <- f)
let persist_dir t = Option.map Store.Persist.dir t.persist

(* Replication catch-up straight off the durable WAL: [None] when there
   is no store or the log no longer reaches back to [version] (the
   snapshot advanced past it) — the caller ships a full snapshot. *)
let batches_for_catchup t ~version =
  match t.persist with
  | None -> None
  | Some p -> Store.Persist.batches_since p ~version

(* Machine-readable refusal for a mutation arriving at a non-leader. *)
let role_refusal = function
  | `Leader -> None
  | `Follower addr ->
    Some (P.Error (P.Not_leader, "not the leader; redirect to " ^ addr, P.leader_hint addr))
  | `Fenced e ->
    Some
      (P.Error
         ( P.Fenced,
           Printf.sprintf "stood down: observed epoch %d above this node's; writes here would split-brain" e,
           P.no_hint ))

(* The partition of the published graph, memoized per version.  Built
   outside the engine lock (the underlying CSR memo has its own
   build-in-progress latch) with a double-checked install so a racing
   builder's duplicate is simply dropped. *)
let partition_for t g version =
  if t.shards <= 1 then None
  else
    match
      locked t (fun () ->
          match t.partition with
          | Some (v, p) when v = version -> Some p
          | _ -> None)
    with
    | Some p -> Some p
    | None ->
      let p = Shard.Partition.create ~shards:t.shards g in
      locked t (fun () ->
          match t.partition with
          | Some (v, p') when v = version -> Some p'
          | _ ->
            t.partition <- Some (version, p);
            Some p)

(* Dispatch one installed query: its compiled plan on the hot path, the
   tree-walking oracle behind the escape hatch.  Both run on the worker
   domain against whatever graph the caller pinned. *)
let execute ?partition t (e : Gsql.Catalog.installed) g params =
  if use_interp t then
    Gsql.Eval.run_query g ?semantics:t.semantics ?partition ~params
      e.Gsql.Catalog.i_query
  else
    Gsql.Compile.run e.Gsql.Catalog.i_plan ?semantics:t.semantics ?partition
      ~params g

let reload t g =
  let old = locked t (fun () ->
      let old = t.graph in
      t.graph <- g;
      t.version <- t.version + 1;
      t.partition <- None;
      old)
  in
  (* Re-specialize every plan's CSR segment symbols against the new
     schema; the generation bumps orphan all old cached results. *)
  Gsql.Catalog.recompile ~schema:(Pgraph.Graph.schema g) t.catalog;
  Cache.clear t.cache;
  Pgraph.Csr.invalidate old

let ty_to_string : Gsql.Ast.param_ty -> string = function
  | Gsql.Ast.Ty_int -> "int"
  | Gsql.Ast.Ty_float -> "float"
  | Gsql.Ast.Ty_string -> "string"
  | Gsql.Ast.Ty_bool -> "bool"
  | Gsql.Ast.Ty_datetime -> "datetime"
  | Gsql.Ast.Ty_vertex None -> "vertex"
  | Gsql.Ast.Ty_vertex (Some ty) -> "vertex<" ^ ty ^ ">"

let info_of t name =
  { P.qi_name = name;
    qi_params =
      List.map (fun (n, ty) -> (n, ty_to_string ty)) (Gsql.Catalog.signature_of t.catalog name) }

let install t source =
  (* Parse first so a reinstall only replaces the old definitions once the
     new source is known to be loadable as a program.  replace_query swaps
     plan and generation atomically, so no invoke can pair the new plan
     with a cache key minted for the old one; the old generation's cached
     results become unreachable the instant the swap lands (the eager
     invalidation afterwards is memory hygiene, not correctness). *)
  match Gsql.Parser.parse_program source with
  | exception Gsql.Parser.Error msg -> P.Error (P.Exec_error, msg, P.no_hint)
  | queries ->
    let schema = Pgraph.Graph.schema (graph t) in
    (match
       List.map
         (fun (q : Gsql.Ast.query) ->
           let fresh = not (Gsql.Catalog.mem t.catalog q.Gsql.Ast.q_name) in
           Gsql.Catalog.replace_query ~schema t.catalog q;
           if not fresh then Cache.invalidate_query t.cache q.Gsql.Ast.q_name;
           q.Gsql.Ast.q_name)
         queries
     with
     | [] -> P.Error (P.Exec_error, "no CREATE QUERY definitions in source", P.no_hint)
     | names -> P.Installed names
     | exception Gsql.Catalog.Error msg -> P.Error (P.Exec_error, msg, P.no_hint))

let list_queries t = P.Queries (List.map (info_of t) (Gsql.Catalog.names t.catalog))

let describe t name =
  if Gsql.Catalog.mem t.catalog name then
    P.Described (info_of t name, Gsql.Catalog.source_of t.catalog name)
  else P.Error (P.Unknown_query, "not installed: " ^ name, P.no_hint)

let drop t name =
  if Gsql.Catalog.mem t.catalog name then begin
    Gsql.Catalog.drop t.catalog name;
    Cache.invalidate_query t.cache name;
    P.Dropped name
  end
  else P.Error (P.Unknown_query, "not installed: " ^ name, P.no_hint)

(* Parameter names must match the declared signature exactly; shape/type
   errors inside the values surface from the evaluator as Exec_error. *)
let check_params (q : Gsql.Ast.query) (params : (string * Pgraph.Value.t) list) =
  let declared = List.map (fun p -> p.Gsql.Ast.p_name) q.Gsql.Ast.q_params in
  let given = List.map fst params in
  let missing = List.filter (fun n -> not (List.mem n given)) declared in
  let unknown = List.filter (fun n -> not (List.mem n declared)) given in
  match (missing, unknown) with
  | [], [] -> Ok ()
  | m :: _, _ -> Error ("missing parameter: " ^ m)
  | _, u :: _ -> Error ("unknown parameter: " ^ u)

let interrupted_response t ~query reason =
  locked t (fun () -> t.n_interrupted <- t.n_interrupted + 1);
  let msg =
    Printf.sprintf "%s interrupted (%s)" query (Interrupt.reason_to_string reason)
  in
  match reason with
  | Interrupt.Cancelled | Interrupt.Deadline -> P.Error (P.Timeout, msg, P.no_hint)
  | Interrupt.Steps | Interrupt.Rows -> P.Error (P.Resource_limit, msg, P.no_hint)

(* The write path: runs on a worker under the single-writer mutex.
   Commit protocol (docs/DURABILITY.md):
     1. snapshot the published graph — readers keep the old version pinned;
     2. evaluate against the clone, the journal capturing logical ops;
     3. append the batch to the WAL and fsync (when persistent);
     4. swap the published graph pointer and bump the version;
     5. clear the cache (old-version entries are already orphaned by the
        version-in-key scheme; clearing frees them eagerly).
   Any failure before step 4 discards the clone, so no partial mutation is
   ever visible to anyone.  A WAL failure additionally flips the engine
   read-only: the commit was not acknowledged and nothing after it will be
   either, which beats silently diverging from the log. *)
let mutate t (iv : P.invoke) entry budget () =
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_lock)
    (fun () ->
      (* Re-check role and read-only under the write lock: both can flip
         between prepare and execution (a higher epoch fenced us, a
         concurrent commit broke the WAL). *)
      match role_refusal (locked t (fun () -> t.role)) with
      | Some refusal ->
        locked t (fun () -> t.n_errors <- t.n_errors + 1);
        refusal
      | None ->
      match locked t (fun () -> t.read_only) with
      | Some why ->
        locked t (fun () -> t.n_errors <- t.n_errors + 1);
        P.Error (P.Read_only, "server is read-only: " ^ why, P.no_hint)
      | None ->
        let base, version = locked t (fun () -> (t.graph, t.version)) in
        let next = Pgraph.Graph.snapshot base in
        let ops = ref [] in
        Pgraph.Graph.set_journal next (Some (fun m -> ops := m :: !ops));
        (match
           Interrupt.with_budget budget (fun () ->
               execute t entry next iv.P.iv_params)
         with
         | result ->
           Pgraph.Graph.set_journal next None;
           let ops = List.rev !ops in
           let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
           let r = P.of_eval_result result in
           if ops = [] then begin
             (* Ran to completion but wrote nothing: no commit, no version
                bump.  (Mutating results are never cached either way — the
                next invocation must re-execute its writes.) *)
             locked t (fun () -> t.n_executed <- t.n_executed + 1);
             P.Result { rs_cached = false; rs_ms = ms; rs_result = r }
           end
           else begin
             let commit_version = version + 1 in
             match
               (match t.persist with
                | Some p -> Store.Persist.commit p next ~version:commit_version ~ops
                | None -> ())
             with
             | () ->
               locked t (fun () ->
                   t.graph <- next;
                   t.version <- commit_version;
                   t.partition <- None;
                   t.n_executed <- t.n_executed + 1;
                   t.n_commits <- t.n_commits + 1);
               Cache.clear t.cache;
               (* The superseded version's frozen CSR index goes with its
                  result-cache entries; in-flight readers pinning [base]
                  simply rebuild on demand.  (The memo key is version-
                  aware either way — this is eager memory hygiene, not a
                  correctness requirement; see lib/graph/csr.mli.) *)
               Pgraph.Csr.invalidate base;
               (* Stream the batch to subscribed followers.  Under sync
                  replication a quorum miss downgrades the answer to
                  [Repl_lag]: the commit stands locally (it is in the WAL
                  and published) but was NOT confirmed replicated, so the
                  client must not count on it surviving a failover. *)
               (match locked t (fun () -> t.publisher) with
                | None -> P.Result { rs_cached = false; rs_ms = ms; rs_result = r }
                | Some publish ->
                  (match publish { Store.Codec.b_version = commit_version; b_ops = ops } with
                   | `Acked -> P.Result { rs_cached = false; rs_ms = ms; rs_result = r }
                   | `Lagging msg -> P.Error (P.Repl_lag, msg, P.no_hint)))
             | exception Store.Wal.Io_error msg ->
               (* The clone is discarded: the published graph never saw the
                  batch, matching the WAL (which truncated or poisoned it). *)
               locked t (fun () ->
                   t.n_wal_errors <- t.n_wal_errors + 1;
                   t.n_errors <- t.n_errors + 1;
                   t.read_only <- Some msg);
               P.Error
                 ( P.Read_only,
                   Printf.sprintf "commit failed (%s); server is now read-only" msg,
                   P.no_hint )
           end
         | exception Gsql.Eval.Runtime_error msg ->
           locked t (fun () -> t.n_errors <- t.n_errors + 1);
           P.Error (P.Exec_error, msg, P.no_hint)
         | exception Interrupt.Interrupted reason ->
           interrupted_response t ~query:iv.P.iv_query reason))

(* The follower's write path: apply one leader batch through the same
   single-writer lane client mutations use, so replication and local
   reads never race.  Versions are the idempotency key: a batch at or
   below the published version is a duplicate (safe to drop — redelivery
   after a resubscribe), one that skips ahead is a gap (the caller must
   re-bootstrap, e.g. request a snapshot).  A WAL failure while logging
   the batch degrades durability (sticky read-only) but the in-memory
   replica keeps following — serving slightly-stale reads beats dropping
   off the replica set. *)
let apply_batch t (batch : Store.Codec.batch) =
  Mutex.lock t.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_lock)
    (fun () ->
      let base, version = locked t (fun () -> (t.graph, t.version)) in
      if batch.Store.Codec.b_version <= version then `Dup
      else if batch.Store.Codec.b_version <> version + 1 then `Gap version
      else
        let next = Pgraph.Graph.snapshot base in
        match List.iter (Pgraph.Graph.apply_mutation next) batch.Store.Codec.b_ops with
        | exception Invalid_argument _ ->
          (* Checksum-valid but inapplicable: the replica diverged from
             the leader's base.  Treat as a gap — re-bootstrapping from a
             snapshot is the only safe continuation. *)
          `Gap version
        | () ->
          (match t.persist with
           | Some p ->
             (try
                Store.Persist.commit p next ~version:batch.Store.Codec.b_version
                  ~ops:batch.Store.Codec.b_ops
              with Store.Wal.Io_error msg ->
                locked t (fun () ->
                    t.n_wal_errors <- t.n_wal_errors + 1;
                    t.read_only <- Some msg))
           | None -> ());
          locked t (fun () ->
              t.graph <- next;
              t.version <- batch.Store.Codec.b_version;
              t.partition <- None;
              t.n_commits <- t.n_commits + 1);
          Cache.clear t.cache;
          Pgraph.Csr.invalidate base;
          `Applied)

(* Full-state bootstrap: replace the replica wholesale with the leader's
   shipped snapshot at an explicit version (unlike {!reload}, which bumps).
   Discards any divergent local tail — exactly the point when a deposed
   leader rejoins — and compacts the local store so the on-disk state
   matches what is being served. *)
let install_snapshot t g ~version =
  Mutex.lock t.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_lock)
    (fun () ->
      let old = locked t (fun () ->
          let old = t.graph in
          t.graph <- g;
          t.version <- version;
          t.partition <- None;
          old)
      in
      Gsql.Catalog.recompile ~schema:(Pgraph.Graph.schema g) t.catalog;
      Cache.clear t.cache;
      Pgraph.Csr.invalidate old;
      match t.persist with
      | Some p ->
        (try Store.Persist.compact p g ~version
         with Store.Wal.Io_error msg ->
           locked t (fun () ->
               t.n_wal_errors <- t.n_wal_errors + 1;
               t.read_only <- Some msg))
      | None -> ())

let prepare_invoke ?tenant_limits t (iv : P.invoke) =
  locked t (fun () -> t.n_invocations <- t.n_invocations + 1);
  (* One catalog lookup: query, plan and generation arrive as a consistent
     snapshot, so a concurrent reinstall can't hand us a new plan with an
     old generation's cache key (or vice versa). *)
  match Gsql.Catalog.lookup t.catalog iv.P.iv_query with
  | None ->
    locked t (fun () -> t.n_errors <- t.n_errors + 1);
    `Ready (P.Error (P.Unknown_query, "not installed: " ^ iv.P.iv_query, P.no_hint))
  | Some entry ->
    let q = entry.Gsql.Catalog.i_query in
    (match check_params q iv.P.iv_params with
     | Error msg ->
       locked t (fun () -> t.n_errors <- t.n_errors + 1);
       `Ready (P.Error (P.Bad_params, msg, P.no_hint))
     | Ok () ->
       let mutating = entry.Gsql.Catalog.i_info.Gsql.Analyze.mutating in
       (* Governor budget for this execution: the per-invoke timeout
          overrides the engine default; step/row ceilings always come
          from the engine limits.  Built at prepare time so queue wait
          counts against the deadline (matching the server's own
          bookkeeping), and exposed so the server can flip its cancel
          flag to reclaim the worker. *)
       let budget_limits =
         { t.limits with
           Interrupt.l_timeout_ms =
             (match iv.P.iv_timeout_ms with
              | Some ms when ms > 0 -> Some ms
              | _ -> t.limits.Interrupt.l_timeout_ms) }
       in
       (* Tenant quota: cap the budget at the tenant's remaining
          allowance, so one invocation can never spend past its bucket
          (the server charges actual consumption when the job retires). *)
       let budget_limits =
         match tenant_limits with
         | None -> budget_limits
         | Some tl -> Interrupt.min_limits budget_limits tl
       in
       if mutating then begin
         match role_refusal (locked t (fun () -> t.role)) with
         | Some refusal ->
           locked t (fun () -> t.n_errors <- t.n_errors + 1);
           `Ready refusal
         | None ->
         match locked t (fun () -> t.read_only) with
         | Some why ->
           locked t (fun () -> t.n_errors <- t.n_errors + 1);
           `Ready (P.Error (P.Read_only, "server is read-only: " ^ why, P.no_hint))
         | None ->
           let budget = Interrupt.of_limits budget_limits in
           `Run { pr_budget = budget; pr_mutating = true; pr_thunk = mutate t iv entry budget }
       end
       else begin
         let g, version = locked t (fun () -> (t.graph, t.version)) in
         let key =
           Cache.key ~query:iv.P.iv_query ~params:iv.P.iv_params ~graph_version:version
             ~plan_gen:entry.Gsql.Catalog.i_generation
         in
         let hit = if iv.P.iv_no_cache then None else Cache.find t.cache key in
         match hit with
         | Some r -> `Ready (P.Result { rs_cached = true; rs_ms = 0.0; rs_result = r })
         | None ->
           let budget = Interrupt.of_limits budget_limits in
           let thunk () =
             let t0 = Unix.gettimeofday () in
             (* Partition lookup on the worker: the memoized build cost
                lands off the coordinator thread. *)
             let partition = partition_for t g version in
             match
               Interrupt.with_budget budget (fun () ->
                   execute ?partition t entry g iv.P.iv_params)
             with
             | result ->
               let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
               let r = P.of_eval_result result in
               Cache.store t.cache key r;
               locked t (fun () -> t.n_executed <- t.n_executed + 1);
               P.Result { rs_cached = false; rs_ms = ms; rs_result = r }
             | exception Gsql.Eval.Runtime_error msg ->
               locked t (fun () -> t.n_errors <- t.n_errors + 1);
               P.Error (P.Exec_error, msg, P.no_hint)
             | exception Interrupt.Interrupted reason ->
               (* Nothing is cached: the execution's private store and its
                  uncommitted phases die with the unwind. *)
               interrupted_response t ~query:iv.P.iv_query reason
           in
           `Run { pr_budget = budget; pr_mutating = false; pr_thunk = thunk }
       end)

let invoke t iv =
  match prepare_invoke t iv with `Ready r -> r | `Run p -> p.pr_thunk ()

let stats t ~extra =
  let invocations, executed, errors, interrupted, version, commits, wal_errors, read_only =
    locked t (fun () ->
        ( t.n_invocations, t.n_executed, t.n_errors, t.n_interrupted, t.version,
          t.n_commits, t.n_wal_errors, t.read_only ))
  in
  let shard_stats =
    if t.shards <= 1 then
      J.Obj
        [ ("count", J.Int 1);
          ("boundary_edges", J.Int 0);
          ("balance", J.Float 1.0) ]
    else
      match partition_for t (graph t) (graph_version t) with
      | Some p -> Shard.Partition.stats p
      | None -> J.Obj [ ("count", J.Int t.shards) ]
  in
  let plan_stats =
    List.filter_map
      (fun name ->
        Option.map
          (fun (e : Gsql.Catalog.installed) ->
            let p = e.Gsql.Catalog.i_plan in
            ( name,
              J.Obj
                [ ("compile_ms", J.Float (Gsql.Compile.compile_ms p));
                  ("plan_ops", J.Int (Gsql.Compile.plan_ops p));
                  ("compiled_ops", J.Int (Gsql.Compile.compiled_ops p));
                  ("generation", J.Int e.Gsql.Catalog.i_generation) ] ))
          (Gsql.Catalog.lookup t.catalog name))
      (Gsql.Catalog.names t.catalog)
  in
  P.Stats_snapshot
    (J.Obj
       ([ ("graph_version", J.Int version);
          ("queries", J.List (List.map (fun n -> J.Str n) (Gsql.Catalog.names t.catalog)));
          ("interp", J.Bool (use_interp t));
          ("plans", J.Obj plan_stats);
          ("invocations", J.Int invocations);
          ("executed", J.Int executed);
          ("errors", J.Int errors);
          ("interrupted", J.Int interrupted);
          ("commits", J.Int commits);
          ("wal_errors", J.Int wal_errors);
          ("persistent", J.Bool (t.persist <> None));
          ( "role",
            J.Str
              (match role t with
               | `Leader -> "leader"
               | `Follower _ -> "follower"
               | `Fenced _ -> "fenced") );
          ( "read_only",
            match read_only with None -> J.Bool false | Some why -> J.Str why );
          ("cache", Cache.stats t.cache);
          ("shards", shard_stats);
          ("csr", Pgraph.Csr.cache_stats ()) ]
       @ extra))
