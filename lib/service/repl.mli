(** WAL-streaming replication: the leader and follower halves of the
    read-replica protocol (docs/DURABILITY.md).

    The leader streams every committed batch — in commit order, via the
    engine's publisher hook — to subscribers whose sockets the server
    detaches and hands over at [Subscribe] time, catching each one up
    first from the durable WAL (or a full snapshot when the log no
    longer reaches back, or the subscriber's history belongs to an older
    epoch).  With [sync_replicas > 0] a commit is only acknowledged to
    the client after that many follower acks; a quorum miss downgrades
    the answer to [repl_lag].

    The follower half runs on its own domain: dial, subscribe, apply
    batches through the engine's single-writer lane, redial on gaps,
    divergence or silence.

    Epoch fencing: a [Subscribe] carrying an epoch above everything this
    node has seen makes a leader stand down ([`Fenced]) instead of
    accepting it; a deposed leader rejoining as a follower subscribes
    with its old history epoch and is therefore re-bootstrapped by
    snapshot, discarding its divergent tail.  {!promote} starts a fresh,
    strictly higher epoch (persisted in [<dir>/epoch] when durable). *)

type t

val create :
  engine:Engine.t -> faults:Faults.t -> ?replica_of:string option ->
  ?sync_replicas:int -> ?sync_timeout_ms:int -> ?max_staleness_ms:int ->
  unit -> t
(** Installs the publisher hook on [engine]; [replica_of = Some addr]
    additionally starts the follower domain (role [`Follower addr]).
    [sync_replicas] (default 0 = async) is the follower-ack quorum per
    commit, awaited up to [sync_timeout_ms] (default 1000).
    [max_staleness_ms] (default 0 = serve any age) bounds follower
    reads via {!stale_for_reads}. *)

val epoch : t -> int
(** The history epoch of the local state. *)

val handle_subscribe :
  t -> fd:Unix.file_descr -> id:int -> version:int -> epoch:int ->
  [ `Subscribed | `Fenced of int | `Not_leader of string ]
(** The server hands over a detached connection whose [Subscribe]
    carried [version]/[epoch].  [`Subscribed]: the hub now owns [fd] (it
    has sent [Sub_ok] + catch-up and will stream).  [`Fenced e]: this
    node cannot serve the stream — and if the subscriber's epoch was
    news, the node just stood down; the caller still owns [fd] and
    should answer an error.  [`Not_leader addr] likewise. *)

val promote : t -> int * int
(** Operator promotion: stop following, start epoch [seen + 1], take the
    leader role.  Returns (new epoch, current version). *)

val follow : t -> string -> (unit, string) result
(** Operator re-point: become a follower of the given endpoint (drops
    any local subscribers — they belong to a leadership no longer
    held).  [Error] when the endpoint string does not parse. *)

val status : t -> Protocol.status

val lag_ms : t -> float option
(** Follower: milliseconds since the last leader frame. *)

val stale_for_reads : t -> bool
(** True when this node is a follower, a staleness bound is configured,
    and {!lag_ms} exceeds it — the server refuses reads with [stale]. *)

val tick : t -> unit
(** Called from the server's event loop: heartbeats subscribers (rate-
    limited internally) and prunes dead ones. *)

val stop : t -> unit
(** Uninstalls the publisher hook, stops the follower domain, closes
    subscriber sockets. *)
