(** Cooperative cancellation and per-execution resource budgets.

    The query governor: a [budget] bundles an atomic cancel flag, a
    wall-clock deadline and step/row ceilings. Long-running code
    (interpreter loops, BFS frontiers, parallel reduce slices) calls
    [tick]/[tick_n] at every unbounded-loop iteration and [check_rows]
    when it materializes a row set; both are near-free when no budget is
    installed and amortized to one real check (atomic load + clock read)
    per a few hundred ticks when one is.

    Budgets are installed per domain via [with_budget] and inherited
    explicitly across [Domain.spawn] with [current]/[with_current] — the
    cancel flag and the step counter are shared (atomic), so cancelling
    a budget stops every domain cooperating on the same execution.

    Exceeding any limit raises {!Interrupted}, which unwinds without
    corrupting shared state by construction: accumulator snapshot phases
    that are never committed are simply discarded ([Accum.Store]), and
    every service execution runs against a private store anyway.

    This module lives in its own dune library ([interrupt]) below
    [pathsem]/[accum]/[gsql] so every engine layer can checkpoint. *)

type reason =
  | Cancelled  (** the cancel flag was flipped (server reclaim, client gone) *)
  | Deadline  (** the wall-clock deadline passed *)
  | Steps  (** the step budget (checkpoint ticks) is exhausted *)
  | Rows  (** a single row set / frontier exceeded the row ceiling *)

exception Interrupted of reason

val reason_to_string : reason -> string

(** {1 Limits — the configuration record} *)

type limits = {
  l_timeout_ms : int option;  (** default wall-clock deadline per execution *)
  l_max_steps : int option;  (** checkpoint-tick ceiling per execution *)
  l_max_rows : int option;  (** binding-table row / BFS frontier-width ceiling *)
}

val no_limits : limits

val min_limits : limits -> limits -> limits
(** Pointwise minimum ([None] = unlimited on that axis) — combines an
    engine's default limits with an externally derived cap, e.g. a
    tenant quota's remaining step/row allowance. *)

(** {1 Budgets} *)

type budget

val make :
  ?cancel:bool Atomic.t ->
  ?deadline:float ->
  ?max_steps:int ->
  ?max_rows:int ->
  unit ->
  budget
(** [make ()] with no arguments is a pure cancel token: no deadline, no
    ceilings, interruptible only via [cancel]. [deadline] is an absolute
    [Unix.gettimeofday] timestamp. *)

val of_limits : ?cancel:bool Atomic.t -> ?now:float -> limits -> budget
(** Budget from a config record; [now] (default: the current time)
    anchors the deadline when [l_timeout_ms] is set. *)

val cancel : budget -> unit
(** Flip the cancel flag. Safe from any thread/domain; every domain
    running under this budget raises [Interrupted Cancelled] at its next
    checkpoint. Idempotent. *)

val cancel_token : budget -> bool Atomic.t
val cancelled : budget -> bool

val deadline : budget -> float
(** [infinity] when the budget has no deadline. *)

val steps : budget -> int
(** Checkpoint ticks charged so far (summed across domains). *)

val rows : budget -> int
(** Cumulative rows materialized under this budget — the sum of every
    [check_rows] argument, charged even when the set breaches the
    ceiling.  Feeds per-tenant row quotas. *)

(** {1 Installing a budget} *)

val with_budget : budget -> (unit -> 'a) -> 'a
(** Run a thunk governed by [budget] on the calling domain. Performs one
    immediate check (so a pre-cancelled budget raises before any work),
    restores the previously installed budget on exit, exception-safe. *)

val current : unit -> budget option
(** The budget governing the calling domain, if any — capture before
    [Domain.spawn] and reinstall in the child with [with_current]. *)

val with_current : budget option -> (unit -> 'a) -> 'a
(** [with_current (Some b) f = with_budget b f]; [with_current None f]
    runs [f] ungoverned. *)

val governed : unit -> bool
(** True when a budget is installed on the calling domain. Guard for
    checkpoint bookkeeping that is not already free (e.g. computing a
    frontier width only to feed [check_rows]). *)

(** {1 Checkpoints} *)

val tick : unit -> unit
(** Charge one step. No budget installed: one domain-local read. Budget
    installed: decrement a local credit counter; every
    [check_interval]-ish ticks do the real check — cancel flag, clock
    vs. deadline, steps vs. ceiling — and raise [Interrupted _] on any
    violation. *)

val tick_n : int -> unit
(** Charge [n] steps at once (e.g. one BFS hop of width [n]). *)

val check_rows : int -> unit
(** Raise [Interrupted Rows] if [n] exceeds the installed row ceiling.
    Also forces a full check, so huge-row paths notice cancellation even
    between ticks. *)

val check_interval : int
(** Upper bound on ticks between real checks (budgets with small step
    ceilings check more often). *)

val checks_performed : unit -> int
(** Process-wide count of real (non-amortized) checks — observability
    for tests asserting the amortization actually engages. *)
