(** Abstract syntax of the GSQL fragment (paper §§2–5).

    The fragment covers everything the paper's listings use: accumulator
    declarations (global and vertex-attached, with initializers), vertex-set
    assignments, SELECT blocks with FROM patterns over DARPEs, WHERE, ACCUM,
    POST_ACCUM, multi-output SELECT ... INTO, HAVING / ORDER BY / LIMIT,
    control flow (WHILE ... LIMIT, IF, FOREACH), PRINT and RETURN, plus a
    [SEMANTICS] pragma for selecting the path-legality flavor per query
    (the per-query choice §6.1 argues for). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | E_int of int
  | E_float of float
  | E_string of string
  | E_bool of bool
  | E_null
  | E_var of string                       (* alias / parameter / set variable *)
  | E_attr of string * string             (* v.attr *)
  | E_vacc of string * string             (* v.@acc *)
  | E_vacc_prev of string * string        (* v.@acc' *)
  | E_gacc of string                      (* @@acc *)
  | E_gacc_prev of string                 (* @@acc' *)
  | E_binop of binop * expr * expr
  | E_unop of unop * expr
  | E_call of string * expr list          (* log(e), abs(e), datetime(y,m,d) *)
  | E_method of expr * string * expr list (* v.outdegree(), @@s.size() *)
  | E_tuple of expr list                  (* (e1, e2, ...) *)
  | E_arrow of expr list * expr list      (* (k1,k2 -> a1,a2): Map/GroupBy input *)

(** Accumulator operation target inside ACCUM / POST_ACCUM. *)
type acc_target =
  | T_global of string           (* @@name *)
  | T_vertex of string * string  (* alias.@name *)

(** Statements allowed inside ACCUM / POST_ACCUM clauses. *)
type acc_stmt =
  | A_input of acc_target * expr   (* target += e *)
  | A_assign of acc_target * expr  (* target = e *)
  | A_local of string * expr       (* [type] x = e — local to one acc-execution *)
  | A_if of expr * acc_stmt list * acc_stmt list
  | A_attr_assign of string * string * expr  (* v.attr = e — write a vertex attribute *)

type output_spec = {
  o_distinct : bool;
  o_exprs : (expr * string option) list;  (* projection, optional AS name *)
  o_into : string;                        (* INTO table name *)
}

type select_target =
  | Sel_vertices of bool * string * string option
      (* SELECT [DISTINCT] alias [INTO name] *)
  | Sel_outputs of output_spec list       (* multi-output SELECT (paper Ex. 5) *)

(* One side of a pattern conjunct: a vertex-type name, set variable or
   vertex-valued parameter, optionally aliased ("Person:p"). *)
type endpoint = {
  ep_set : string;
  ep_alias : string option;
}

(* "src -(darpe[:edge_alias])- dst".  The edge alias is only legal when the
   DARPE is a single step (tractable class: no variables under Kleene
   stars). *)
type conjunct = {
  c_src : endpoint;
  c_darpe : Darpe.Ast.t;
  c_edge_alias : string option;
  c_dst : endpoint;
}

type select_block = {
  s_target : select_target;
  s_from : conjunct list;
  s_where : expr option;
  s_accum : acc_stmt list;
  s_post_accum : acc_stmt list;
  s_group_by : expr list;
      (* SQL-borrowed GROUP BY (§4.2): groups the binding table for
         aggregate projections (count/sum/avg/min/max) in multi-output
         SELECTs *)
  s_having : expr option;
  s_order_by : (expr * bool) list;  (* expr, descending? *)
  s_limit : expr option;
}

type acc_decl = {
  d_spec : Accum.Spec.t;
  d_names : (bool * string) list;  (* is_global?, name (no @ prefix) *)
  d_init : expr option;
}

type set_operator = Op_union | Op_intersect | Op_minus

type set_source =
  | Set_types of string list  (* {T1.*, T2.*} or {ANY} as ["*"] *)
  | Set_copy of string        (* X = Y *)
  | Set_op of set_operator * string * string
      (* X = Y UNION|INTERSECT|MINUS Z — GSQL's vertex-set algebra *)

type stmt =
  | S_acc_decl of acc_decl
  | S_set_assign of string * set_source
  | S_select of string option * select_block  (* optional "X =" binding *)
  | S_gacc_assign of string * bool * expr     (* @@x = e (false) / @@x += e (true) *)
  | S_let of string * expr                    (* scalar local binding *)
  | S_while of expr * expr option * stmt list (* cond, LIMIT n, body *)
  | S_if of expr * stmt list * stmt list
  | S_foreach of string * expr * stmt list
  | S_print of print_item list
  | S_return of expr
  | S_insert of string * string list * expr list
      (* INSERT INTO TypeName (attr, ...) VALUES (e, ...); for edge types the
         first two VALUES are the source and target vertices *)

and print_item =
  | P_expr of expr * string option
  | P_proj of string * expr list  (* R[e1, e2]: project each member of set R *)

type param_ty =
  | Ty_int
  | Ty_float
  | Ty_string
  | Ty_bool
  | Ty_datetime
  | Ty_vertex of string option  (* vertex<Person> *)

type param = {
  p_name : string;
  p_ty : param_ty;
}

type query = {
  q_name : string;
  q_params : param list;
  q_graph : string option;
  q_semantics : Pathsem.Semantics.t option;
      (* SEMANTICS "non-repeated-edge" pragma; None = engine default
         (all-shortest-paths) *)
  q_body : stmt list;
}

type program = query list

(* ------------------------------------------------------------------ *)
(* Pretty-printing (used by error messages and tests).                 *)

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

(* Float literals must re-lex: always a fraction dot, and a mantissa dot
   before any exponent ("1e+06" is not lexable, "1.0e+06" is). *)
let float_literal f =
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' then s
  else
    match String.index_opt s 'e' with
    | Some i -> String.sub s 0 i ^ ".0" ^ String.sub s i (String.length s - i)
    | None -> s ^ ".0"

let rec expr_to_string = function
  | E_int n -> string_of_int n
  | E_float f -> float_literal f
  | E_string s -> Printf.sprintf "%S" s
  | E_bool b -> string_of_bool b
  | E_null -> "NULL"
  | E_var v -> v
  | E_attr (v, a) -> v ^ "." ^ a
  | E_vacc (v, a) -> v ^ ".@" ^ a
  | E_vacc_prev (v, a) -> v ^ ".@" ^ a ^ "'"
  | E_gacc a -> "@@" ^ a
  | E_gacc_prev a -> "@@" ^ a ^ "'"
  | E_binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op) (expr_to_string b)
  | E_unop (Neg, e) -> "(-" ^ expr_to_string e ^ ")"
  | E_unop (Not, e) -> "(NOT " ^ expr_to_string e ^ ")"
  | E_call (f, args) -> f ^ "(" ^ String.concat ", " (List.map expr_to_string args) ^ ")"
  | E_method (e, m, args) ->
    Printf.sprintf "%s.%s(%s)" (expr_to_string e) m (String.concat ", " (List.map expr_to_string args))
  | E_tuple es -> "(" ^ String.concat ", " (List.map expr_to_string es) ^ ")"
  | E_arrow (ks, vs) ->
    Printf.sprintf "(%s -> %s)"
      (String.concat ", " (List.map expr_to_string ks))
      (String.concat ", " (List.map expr_to_string vs))

let target_to_string = function
  | T_global g -> "@@" ^ g
  | T_vertex (v, a) -> v ^ ".@" ^ a

let endpoint_to_string ep =
  match ep.ep_alias with Some a -> ep.ep_set ^ ":" ^ a | None -> ep.ep_set

let conjunct_to_string c =
  Printf.sprintf "%s -(%s%s)- %s" (endpoint_to_string c.c_src)
    (Darpe.Ast.to_string c.c_darpe)
    (match c.c_edge_alias with Some a -> ":" ^ a | None -> "")
    (endpoint_to_string c.c_dst)

(* A stable identity for a SELECT block.  The evaluator stamps it on every
   "select" span and EXPLAIN ANALYZE joins recorded spans back to plan nodes
   through it, so the same static block executed across WHILE iterations
   aggregates into one plan annotation.  The FROM clause alone is not enough
   (two blocks over the same pattern are common — e.g. an iterate-then-rank
   pair), so the projection target and the filtering/ordering clauses are
   folded in as well. *)
let select_signature (b : select_block) =
  let target =
    match b.s_target with
    | Sel_vertices (distinct, alias, into) ->
      (if distinct then "DISTINCT " else "")
      ^ alias
      ^ (match into with Some n -> " INTO " ^ n | None -> "")
    | Sel_outputs outs -> String.concat "; " (List.map (fun o -> "INTO " ^ o.o_into) outs)
  in
  let opt name = function None -> [] | Some e -> [ name ^ " " ^ expr_to_string e ] in
  String.concat " | "
    ([ target; String.concat ", " (List.map conjunct_to_string b.s_from) ]
     @ opt "WHERE" b.s_where
     @ (if b.s_accum = [] then [] else [ Printf.sprintf "ACCUM[%d]" (List.length b.s_accum) ])
     @ (if b.s_post_accum = [] then []
        else [ Printf.sprintf "POST_ACCUM[%d]" (List.length b.s_post_accum) ])
     @ (if b.s_order_by = [] then []
        else
          [ "ORDER BY "
            ^ String.concat ", "
                (List.map (fun (e, d) -> expr_to_string e ^ if d then " DESC" else "") b.s_order_by) ])
     @ opt "LIMIT" b.s_limit)

let pp_expr fmt e = Format.pp_print_string fmt (expr_to_string e)
