(* Install-time lowering of analyzed GSQL to closure plans.

   The compiled runtime shares Eval's execution context: compiled ops and
   interpreted fallback statements (PRINT, INSERT, GROUP-BY selects) run
   against the same ctx, store, and variable table, so the two paths
   compose within one run and cannot diverge on shared state.  Every
   dynamic decision the interpreter makes per invoke — alias-name slot
   scans, WHERE push-down decomposition, POST_ACCUM grouping, segment
   symbol resolution — is made once here; what remains at invoke time is
   flat int-array loops with Interrupt checkpoints at the same program
   points the interpreter ticks.  See docs/COMPILER.md. *)

module V = Pgraph.Value
module B = Pgraph.Bignat
module G = Pgraph.Graph
module Sem = Pathsem.Semantics
module E = Eval

(* ------------------------------------------------------------------ *)
(* Runtime environment threaded through compiled closures              *)

(* A physically unique sentinel marking a not-yet-assigned ACCUM local.
   Matching the interpreter: an unassigned local is absent from its
   locals table, so lookups fall through to aliases / ctx vars. *)
let unset : V.t = V.Vtuple [||]

type renv = {
  ctx : E.ctx;
  mutable data : int array;   (* flat binding table: rows of verts++edges *)
  mutable base : int;         (* current row offset into [data] *)
  mutable mult : B.t;         (* current row multiplicity *)
  mutable locals : V.t array; (* ACCUM-local slots, [unset]-initialized *)
  mutable probe : int;        (* vertex id in single-vertex contexts *)
  mutable combo : int array;  (* distinct-combo values in output contexts *)
  mutable overlay : E.overlay option;
}

type rx = renv -> V.t

(* ------------------------------------------------------------------ *)
(* Compile-time name resolution                                        *)

(* Binders mirror the interpreter's env lookup chains, in lookup order. *)
type binder =
  | B_probe of string                       (* alias -> renv.probe *)
  | B_locals of (string * int) list         (* name -> local slot *)
  | B_row of string array * string array    (* vertex / edge alias slots *)
  | B_combo of (string * int * bool) list   (* name, combo idx, is_edge *)

type scope = { sc_binders : binder list }

let gscope = { sc_binders = [] }

(* Static chain: first binder that can bind the name contributes a step;
   dynamic non-binding (unset local, -1 slot) falls through exactly like
   the interpreter's Hashtbl/array misses. *)
let rec lookup_chain binders name : (renv -> V.t option) option =
  match binders with
  | [] -> None
  | B_probe a :: rest ->
    if a = name then Some (fun env -> Some (V.Vertex env.probe))
    else lookup_chain rest name
  | B_locals ls :: rest ->
    (match List.assoc_opt name ls with
     | Some i ->
       let next = lookup_chain rest name in
       Some
         (fun env ->
           let v = env.locals.(i) in
           if v != unset then Some v
           else match next with Some f -> f env | None -> None)
     | None -> lookup_chain rest name)
  | B_row (va, ea) :: rest ->
    let vi = E.alias_slot va name in
    if vi >= 0 then begin
      let next = lookup_chain rest name in
      Some
        (fun env ->
          let v = env.data.(env.base + vi) in
          if v >= 0 then Some (V.Vertex v)
          else match next with Some f -> f env | None -> None)
    end
    else begin
      let ei = E.alias_slot ea name in
      if ei >= 0 then begin
        let nv = Array.length va in
        let next = lookup_chain rest name in
        Some
          (fun env ->
            let e = env.data.(env.base + nv + ei) in
            if e >= 0 then Some (V.Edge e)
            else match next with Some f -> f env | None -> None)
      end
      else lookup_chain rest name
    end
  | B_combo cs :: rest ->
    (match List.find_opt (fun (n, _, _) -> n = name) cs with
     | Some (_, i, true) -> Some (fun env -> Some (V.Edge env.combo.(i)))
     | Some (_, i, false) -> Some (fun env -> Some (V.Vertex env.combo.(i)))
     | None -> lookup_chain rest name)

(* Dynamic walk of the same chain, for the interpreter-env bridge. *)
let rec dyn_lookup binders env name : V.t option =
  match binders with
  | [] -> None
  | B_probe a :: rest ->
    if a = name then Some (V.Vertex env.probe) else dyn_lookup rest env name
  | B_locals ls :: rest ->
    (match List.assoc_opt name ls with
     | Some i ->
       let v = env.locals.(i) in
       if v != unset then Some v else dyn_lookup rest env name
     | None -> dyn_lookup rest env name)
  | B_row (va, ea) :: rest ->
    let vi = E.alias_slot va name in
    if vi >= 0 then begin
      let v = env.data.(env.base + vi) in
      if v >= 0 then Some (V.Vertex v) else dyn_lookup rest env name
    end
    else begin
      let ei = E.alias_slot ea name in
      if ei >= 0 then begin
        let e = env.data.(env.base + Array.length va + ei) in
        if e >= 0 then Some (V.Edge e) else dyn_lookup rest env name
      end
      else dyn_lookup rest env name
    end
  | B_combo cs :: rest ->
    (match List.find_opt (fun (n, _, _) -> n = name) cs with
     | Some (_, i, true) -> Some (V.Edge env.combo.(i))
     | Some (_, i, false) -> Some (V.Vertex env.combo.(i))
     | None -> dyn_lookup rest env name)

(* Bridge to Eval for rare expression forms (methods): an Eval.env whose
   lookup resolves through this scope at runtime. *)
let to_eval_env sc env : E.env =
  { E.e_ctx = env.ctx;
    e_lookup = (fun n -> dyn_lookup sc.sc_binders env n);
    e_overlay = env.overlay;
    e_agg = None }

let ctx_value env name =
  match E.ctx_var_value env.ctx name with
  | Some v -> v
  | None -> E.error "unbound variable %s" name

let vertex_ctx env name =
  match E.ctx_var_value env.ctx name with
  | Some (V.Vertex v) -> v
  | _ -> E.error "unbound vertex variable %s" name

let compile_var sc name : rx =
  match lookup_chain sc.sc_binders name with
  | Some lk ->
    fun env -> (match lk env with Some v -> v | None -> ctx_value env name)
  | None -> fun env -> ctx_value env name

(* Direct vertex-id resolution, skipping the V.Vertex boxing where the
   binder guarantees a vertex. *)
type vres =
  | Vr_sure of (renv -> int)
  | Vr_maybe of (renv -> int)  (* < 0 = unbound, fall through to ctx *)
  | Vr_none

let rec vslot_chain binders name : vres =
  match binders with
  | [] -> Vr_none
  | B_probe a :: rest ->
    if a = name then Vr_sure (fun env -> env.probe) else vslot_chain rest name
  | B_locals ls :: rest ->
    if List.mem_assoc name ls then Vr_none else vslot_chain rest name
  | B_row (va, ea) :: rest ->
    let vi = E.alias_slot va name in
    if vi >= 0 then Vr_maybe (fun env -> env.data.(env.base + vi))
    else if E.alias_slot ea name >= 0 then Vr_none
    else vslot_chain rest name
  | B_combo cs :: rest ->
    (match List.find_opt (fun (n, _, _) -> n = name) cs with
     | Some (_, i, false) -> Vr_sure (fun env -> env.combo.(i))
     | Some (_, _, true) -> Vr_none
     | None -> vslot_chain rest name)

let compile_vertex_of sc name : renv -> int =
  match vslot_chain sc.sc_binders name with
  | Vr_sure f -> f
  | Vr_maybe f ->
    fun env ->
      let v = f env in
      if v >= 0 then v else vertex_ctx env name
  | Vr_none ->
    (match lookup_chain sc.sc_binders name with
     | Some lk ->
       fun env ->
         (match lk env with
          | Some (V.Vertex v) -> v
          | Some other ->
            E.error "%s is bound to %s, not a vertex" name (V.to_string other)
          | None -> vertex_ctx env name)
     | None -> fun env -> vertex_ctx env name)

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)

let binop_fn : Ast.binop -> V.t -> V.t -> V.t = function
  | Ast.Add -> V.add
  | Ast.Sub -> V.sub
  | Ast.Mul -> V.mul
  | Ast.Div -> V.div
  | Ast.Mod -> V.modulo
  | Ast.Eq -> fun x y -> V.Bool (V.equal x y)
  | Ast.Neq -> fun x y -> V.Bool (not (V.equal x y))
  | Ast.Lt -> fun x y -> V.Bool (V.compare x y < 0)
  | Ast.Le -> fun x y -> V.Bool (V.compare x y <= 0)
  | Ast.Gt -> fun x y -> V.Bool (V.compare x y > 0)
  | Ast.Ge -> fun x y -> V.Bool (V.compare x y >= 0)
  | Ast.And | Ast.Or -> assert false

let read_target env (tgt : Accum.Store.target) =
  match env.overlay with
  | Some o ->
    (match Hashtbl.find_opt o tgt with
     | Some v -> v
     | None -> Accum.Store.read env.ctx.E.store tgt)
  | None -> Accum.Store.read env.ctx.E.store tgt

let rec compile_expr sc (e : Ast.expr) : rx =
  match e with
  | Ast.E_int n -> let v = V.Int n in fun _ -> v
  | Ast.E_float f -> let v = V.Float f in fun _ -> v
  | Ast.E_string s -> let v = V.Str s in fun _ -> v
  | Ast.E_bool b -> let v = V.Bool b in fun _ -> v
  | Ast.E_null -> fun _ -> V.Null
  | Ast.E_var name -> compile_var sc name
  | Ast.E_attr (base, attr) ->
    let ctx_attr env =
      match E.ctx_var_value env.ctx base with
      | Some (V.Vertex v) -> G.vertex_attr env.ctx.E.graph v attr
      | Some (V.Edge e) -> G.edge_attr env.ctx.E.graph e attr
      | _ -> E.error "unbound variable %s" base
    in
    (match vslot_chain sc.sc_binders base with
     | Vr_sure f -> fun env -> G.vertex_attr env.ctx.E.graph (f env) attr
     | Vr_maybe f ->
       fun env ->
         let v = f env in
         if v >= 0 then G.vertex_attr env.ctx.E.graph v attr else ctx_attr env
     | Vr_none ->
       (match lookup_chain sc.sc_binders base with
        | Some lk ->
          fun env ->
            (match lk env with
             | Some (V.Vertex v) -> G.vertex_attr env.ctx.E.graph v attr
             | Some (V.Edge e) -> G.edge_attr env.ctx.E.graph e attr
             | Some other ->
               E.error "%s.%s: %s is not a vertex or edge" base attr
                 (V.to_string other)
             | None -> ctx_attr env)
        | None -> ctx_attr))
  | Ast.E_vacc (base, acc) ->
    let vid = compile_vertex_of sc base in
    fun env -> read_target env (Accum.Store.Vertex_acc (acc, vid env))
  | Ast.E_vacc_prev (base, acc) ->
    let vid = compile_vertex_of sc base in
    fun env ->
      Accum.Store.read_prev env.ctx.E.store (Accum.Store.Vertex_acc (acc, vid env))
  | Ast.E_gacc name ->
    let tgt = Accum.Store.Global name in
    fun env -> read_target env tgt
  | Ast.E_gacc_prev name ->
    let tgt = Accum.Store.Global name in
    fun env -> Accum.Store.read_prev env.ctx.E.store tgt
  | Ast.E_binop (Ast.And, a, b) ->
    let ca = compile_expr sc a and cb = compile_expr sc b in
    fun env -> V.Bool (V.to_bool (ca env) && V.to_bool (cb env))
  | Ast.E_binop (Ast.Or, a, b) ->
    let ca = compile_expr sc a and cb = compile_expr sc b in
    fun env -> V.Bool (V.to_bool (ca env) || V.to_bool (cb env))
  | Ast.E_binop (op, a, b) ->
    let ca = compile_expr sc a and cb = compile_expr sc b in
    let f = binop_fn op in
    fun env ->
      let x = ca env in
      let y = cb env in
      f x y
  | Ast.E_unop (Ast.Neg, a) ->
    let ca = compile_expr sc a in
    fun env -> V.neg (ca env)
  | Ast.E_unop (Ast.Not, a) ->
    let ca = compile_expr sc a in
    fun env -> V.Bool (not (V.to_bool (ca env)))
  | Ast.E_call (name, args) ->
    let cargs = List.map (compile_expr sc) args in
    fun env -> E.builtin_call name (List.map (fun c -> c env) cargs)
  | Ast.E_method _ ->
    (* Methods resolve vertices through the raw env; bridge to Eval. *)
    fun env -> E.eval_expr (to_eval_env sc env) e
  | Ast.E_tuple es ->
    let ces = List.map (compile_expr sc) es in
    fun env -> V.Vtuple (Array.of_list (List.map (fun c -> c env) ces))
  | Ast.E_arrow (ks, vs) ->
    let cks = List.map (compile_expr sc) ks in
    let cvs = List.map (compile_expr sc) vs in
    fun env ->
      let keys = Array.of_list (List.map (fun c -> c env) cks) in
      let vals = Array.of_list (List.map (fun c -> c env) cvs) in
      if Array.length keys = 1 && Array.length vals = 1 then
        V.Vtuple [| keys.(0); vals.(0) |]
      else V.Vtuple [| V.Vtuple keys; V.Vtuple vals |]

let compile_bool sc e =
  let ce = compile_expr sc e in
  fun env -> V.to_bool (ce env)

(* ------------------------------------------------------------------ *)
(* Flat binding tables                                                 *)

type fbt = {
  f_nv : int;
  f_ne : int;
  f_stride : int;
  mutable f_data : int array;
  mutable f_mult : B.t array;
  mutable f_n : int;
}

let fbt_make ~nv ~ne ~cap =
  let stride = nv + ne in
  let cap = max 1 cap in
  { f_nv = nv;
    f_ne = ne;
    f_stride = stride;
    f_data = Array.make (cap * stride) (-1);
    f_mult = Array.make cap B.one;
    f_n = 0 }

let fbt_grow bt =
  let cap = max 4 (2 * Array.length bt.f_mult) in
  let data' = Array.make (cap * bt.f_stride) (-1) in
  Array.blit bt.f_data 0 data' 0 (bt.f_n * bt.f_stride);
  bt.f_data <- data';
  let mult' = Array.make cap B.one in
  Array.blit bt.f_mult 0 mult' 0 bt.f_n;
  bt.f_mult <- mult'

(* Appends a fresh all-unset row; returns its base offset. *)
let fbt_push bt =
  if (bt.f_n + 1) * bt.f_stride > Array.length bt.f_data then fbt_grow bt;
  let base = bt.f_n * bt.f_stride in
  Array.fill bt.f_data base bt.f_stride (-1);
  bt.f_n <- bt.f_n + 1;
  base

(* Growable int buffer for CSR scans. *)
type ibuf = { mutable ia : int array; mutable im : B.t array; mutable il : int }

let ib_make () = { ia = Array.make 16 0; im = [||]; il = 0 }

let ib_push b x =
  if b.il = Array.length b.ia then begin
    let a' = Array.make (2 * Array.length b.ia) 0 in
    Array.blit b.ia 0 a' 0 b.il;
    b.ia <- a'
  end;
  b.ia.(b.il) <- x;
  b.il <- b.il + 1

let ib_contents b = Array.sub b.ia 0 b.il

(* Matched endpoint pairs.  [p_rev] marks Step scans, whose interpreter
   pair list is the reverse of CSR discovery order (it conses during the
   scan) — the join below replays the interpreter's exact iteration
   orders so compiled row order is bit-identical. *)
type pairs = {
  p_src : int array;
  p_dst : int array;
  p_edg : int array;          (* -1 when the conjunct binds no edge *)
  p_mul : B.t array;
  p_n : int;
  p_rev : bool;
}

(* Interpreter pair-list order. *)
let iter_eval p f =
  if p.p_rev then for i = p.p_n - 1 downto 0 do f i done
  else for i = 0 to p.p_n - 1 do f i done

(* ------------------------------------------------------------------ *)
(* Conjunct execution                                                  *)

type step = {
  st_ty : string option;
  st_rels : G.dir_rel list;             (* allowed, in [Out; In; Und] order *)
  st_rel_ok : bool array;               (* indexed by rel code *)
  st_static : (Pgraph.Schema.t * int array) option;
      (* install-time segment symbols, valid while the schema is the one
         compiled against; other schemas resolve per execution *)
}

type cj_kind =
  | Cj_step of step
  | Cj_ident of Darpe.Ast.t
      (* the DARPE accepts only the empty word ([fixed_unique_length] 0,
         e.g. [E>*0..0]): the DFA product constant-folds at install time
         to identity pairs (v, v) with multiplicity one *)
  | Cj_kleene of Darpe.Ast.t

type cconj = {
  cj_src_ep : Ast.endpoint;
  cj_dst_ep : Ast.endpoint;
  cj_src_alias : string;
  cj_dst_alias : string;
  cj_src_slot : int;
  cj_dst_slot : int;
  cj_edge_slot : int;                   (* -1 = none *)
  cj_src_pushed : (renv -> bool) list;  (* probe-scope pushed WHERE preds *)
  cj_dst_pushed : (renv -> bool) list;
  cj_kind : cj_kind;
}

let rel_allowed (adir : Darpe.Ast.adir) (rel : G.dir_rel) =
  match adir, rel with
  | Darpe.Ast.Fwd, G.Out | Darpe.Ast.Rev, G.In | Darpe.Ast.Undir, G.Und
  | Darpe.Ast.Any, _ -> true
  | (Darpe.Ast.Fwd | Darpe.Ast.Rev | Darpe.Ast.Undir), _ -> false

let make_step (schema : Pgraph.Schema.t option) ty adir =
  let rels = List.filter (rel_allowed adir) [ G.Out; G.In; G.Und ] in
  let rel_ok = Array.init 3 (fun c -> rel_allowed adir (Pgraph.Csr.rel_of_code c)) in
  let st_static =
    match schema, ty with
    | Some sch, Some name ->
      (match Pgraph.Schema.find_edge_type sch name with
       | Some et ->
         Some
           ( sch,
             Array.of_list
               (List.map
                  (fun rel -> Pgraph.Csr.sym ~etype:et.Pgraph.Schema.et_id ~rel)
                  rels) )
       | None -> None)
    | _ -> None
  in
  { st_ty = ty; st_rels = rels; st_rel_ok = rel_ok; st_static }

let step_syms env st tyname =
  match st.st_static with
  | Some (sch, syms) when sch == G.schema env.ctx.E.graph -> syms
  | _ ->
    (match Pgraph.Schema.find_edge_type (G.schema env.ctx.E.graph) tyname with
     | Some et ->
       Array.of_list
         (List.map
            (fun rel -> Pgraph.Csr.sym ~etype:et.Pgraph.Schema.et_id ~rel)
            st.st_rels)
     | None -> E.error "unknown edge type %s" tyname)

(* Specialized single-step scan over the frozen CSR's (etype, rel)
   segments.  Discovery order matches the interpreter's scan exactly;
   [p_rev] accounts for its list-consing reversal. *)
let run_step env st (sources : int array) ~(dst_ok : int -> bool) : pairs =
  let csr = Pgraph.Csr.of_graph env.ctx.E.graph in
  let sb = ib_make () and db = ib_make () and eb = ib_make () in
  let scan src lo hi =
    for j = lo to hi - 1 do
      let dst = csr.Pgraph.Csr.nbr.(j) in
      if dst_ok dst then begin
        ib_push sb src;
        ib_push db dst;
        ib_push eb csr.Pgraph.Csr.edg.(j)
      end
    done
  in
  (match st.st_ty with
   | Some tyname ->
     let syms = step_syms env st tyname in
     Array.iter
       (fun src ->
         Array.iter
           (fun sym ->
             match Pgraph.Csr.find_segment csr src ~sym with
             | Some (lo, hi) -> scan src lo hi
             | None -> ())
           syms)
       sources
   | None ->
     Array.iter
       (fun src ->
         Pgraph.Csr.iter_segments csr src (fun ~sym ~lo ~hi ->
             if st.st_rel_ok.(sym mod 3) then scan src lo hi))
       sources);
  let n = sb.il in
  { p_src = ib_contents sb;
    p_dst = ib_contents db;
    p_edg = ib_contents eb;
    p_mul = Array.make (max 1 n) B.one;
    p_n = n;
    p_rev = true }

let pairs_of_bindings (bl : Pathsem.Engine.binding list) : pairs =
  let n = List.length bl in
  let ps = Array.make (max 1 n) 0 in
  let pd = Array.make (max 1 n) 0 in
  let pm = Array.make (max 1 n) B.one in
  List.iteri
    (fun i (b : Pathsem.Engine.binding) ->
      ps.(i) <- b.Pathsem.Engine.b_src;
      pd.(i) <- b.Pathsem.Engine.b_dst;
      pm.(i) <- b.Pathsem.Engine.b_mult)
    bl;
  { p_src = ps; p_dst = pd; p_edg = Array.make (max 1 n) (-1); p_mul = pm;
    p_n = n; p_rev = false }

let exec_conjunct env (cj : cconj) (bt : fbt) : fbt =
  let ctx = env.ctx in
  let stride = bt.f_stride and nv = bt.f_nv in
  let src_bound =
    bt.f_n > 0
    &&
    let rec go r =
      r < bt.f_n && (bt.f_data.(r * stride + cj.cj_src_slot) >= 0 || go (r + 1))
    in
    go 0
  in
  let sources =
    if src_bound then begin
      let seen = Hashtbl.create 64 and buf = ib_make () in
      for r = 0 to bt.f_n - 1 do
        let v = bt.f_data.(r * stride + cj.cj_src_slot) in
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          ib_push buf v
        end
      done;
      ib_contents buf
    end
    else E.endpoint_seed ctx cj.cj_src_ep
  in
  let src_base = E.endpoint_pred ctx cj.cj_src_ep in
  let src_pinned = E.alias_constraint ctx cj.cj_src_alias in
  let src_ok v =
    src_base v
    && (cj.cj_src_pushed == []
        || begin
          env.probe <- v;
          List.for_all (fun p -> p env) cj.cj_src_pushed
        end)
    && (match src_pinned with None -> true | Some p -> v = p)
  in
  let sources =
    let buf = ib_make () in
    Array.iter (fun v -> if src_ok v then ib_push buf v) sources;
    ib_contents buf
  in
  let dst_base = E.endpoint_pred ctx cj.cj_dst_ep in
  let dst_pinned = E.alias_constraint ctx cj.cj_dst_alias in
  let pairs =
    match cj.cj_kind with
    | Cj_step st ->
      (* Sequential scan: probe mutation is safe. *)
      let dst_ok v =
        dst_base v
        && (cj.cj_dst_pushed == []
            || begin
              env.probe <- v;
              List.for_all (fun p -> p env) cj.cj_dst_pushed
            end)
        && (match dst_pinned with None -> true | Some p -> v = p)
      in
      run_step env st sources ~dst_ok
    | Cj_ident _ ->
      (* Sequential, like Cj_step: probe mutation is safe.  The engine
         would run one product-BFS per source only to accept the empty
         path; emitting (v, v) directly is result-identical (sources are
         already in the engine's iteration order, multiplicity of the
         unique empty path is one). *)
      let dst_ok v =
        dst_base v
        && (cj.cj_dst_pushed == []
            || begin
              env.probe <- v;
              List.for_all (fun p -> p env) cj.cj_dst_pushed
            end)
        && (match dst_pinned with None -> true | Some p -> v = p)
      in
      let sb = ib_make () in
      Array.iter (fun v -> if dst_ok v then ib_push sb v) sources;
      let n = sb.il in
      let vs = ib_contents sb in
      (* p_rev replays the engine's list-consing order (it folds over
         sources consing bindings, so its pair list is source-reversed). *)
      { p_src = vs; p_dst = vs;
        p_edg = Array.make (max 1 n) (-1);
        p_mul = Array.make (max 1 n) B.one;
        p_n = n; p_rev = true }
    | Cj_kleene darpe ->
      (* match_pairs fans out across domains: the predicate must not
         mutate the shared renv, so probe through a private copy. *)
      let dst_ok v =
        dst_base v
        && (cj.cj_dst_pushed == []
            ||
            let env' = { env with probe = v } in
            List.for_all (fun p -> p env') cj.cj_dst_pushed)
        && (match dst_pinned with None -> true | Some p -> v = p)
      in
      pairs_of_bindings
        (Pathsem.Engine.match_pairs ?shards:ctx.E.partition ctx.E.graph darpe
           ctx.E.semantics ~sources ~dst_ok)
  in
  let result =
    if bt.f_n = 0 then begin
      let nbt = fbt_make ~nv ~ne:bt.f_ne ~cap:pairs.p_n in
      iter_eval pairs (fun i ->
          let base = fbt_push nbt in
          nbt.f_data.(base + cj.cj_src_slot) <- pairs.p_src.(i);
          nbt.f_data.(base + cj.cj_dst_slot) <- pairs.p_dst.(i);
          if cj.cj_edge_slot >= 0 then
            nbt.f_data.(base + nv + cj.cj_edge_slot) <- pairs.p_edg.(i);
          nbt.f_mult.(nbt.f_n - 1) <- pairs.p_mul.(i));
      nbt
    end
    else begin
      (* Hash-join on the already-bound endpoints; candidate-list and row
         iteration orders replicate the interpreter's. *)
      let by_src = Hashtbl.create 64 in
      iter_eval pairs (fun i ->
          let s = pairs.p_src.(i) in
          Hashtbl.replace by_src s
            (i :: (try Hashtbl.find by_src s with Not_found -> [])));
      let nbt = fbt_make ~nv ~ne:bt.f_ne ~cap:bt.f_n in
      let extend rbase rmult i =
        let s = pairs.p_src.(i) and d = pairs.p_dst.(i) in
        let rs = bt.f_data.(rbase + cj.cj_src_slot) in
        let rd = bt.f_data.(rbase + cj.cj_dst_slot) in
        if (rs >= 0 && rs <> s) || (rd >= 0 && rd <> d) then ()
        else begin
          let base = fbt_push nbt in
          Array.blit bt.f_data rbase nbt.f_data base stride;
          nbt.f_data.(base + cj.cj_src_slot) <- s;
          nbt.f_data.(base + cj.cj_dst_slot) <- d;
          if cj.cj_edge_slot >= 0 then
            nbt.f_data.(base + nv + cj.cj_edge_slot) <- pairs.p_edg.(i);
          nbt.f_mult.(nbt.f_n - 1) <- B.mul rmult pairs.p_mul.(i)
        end
      in
      for r = 0 to bt.f_n - 1 do
        let rbase = r * stride in
        let rmult = bt.f_mult.(r) in
        if src_bound && bt.f_data.(rbase + cj.cj_src_slot) >= 0 then
          match Hashtbl.find_opt by_src bt.f_data.(rbase + cj.cj_src_slot) with
          | Some idxs -> List.iter (extend rbase rmult) idxs
          | None -> ()
        else iter_eval pairs (extend rbase rmult)
      done;
      nbt
    end
  in
  (* Governor checkpoint, same placement as the interpreter — but the row
     count is O(1) here instead of a List.length walk. *)
  if Interrupt.governed () then begin
    Interrupt.check_rows result.f_n;
    Interrupt.tick_n result.f_n
  end;
  result

(* ------------------------------------------------------------------ *)
(* ACCUM / POST_ACCUM kernels                                          *)

type astmt = renv -> Accum.Store.phase -> unit

let collect_locals stmts =
  let ls = ref [] and n = ref 0 in
  let add x =
    if not (List.mem_assoc x !ls) then begin
      ls := (x, !n) :: !ls;
      incr n
    end
  in
  let rec go = function
    | Ast.A_local (x, _) -> add x
    | Ast.A_if (_, th, el) ->
      List.iter go th;
      List.iter go el
    | Ast.A_input _ | Ast.A_assign _ | Ast.A_attr_assign _ -> ()
  in
  List.iter go stmts;
  (List.rev !ls, !n)

let rec has_assign = function
  | [] -> false
  | Ast.A_assign _ :: _ -> true
  | Ast.A_if (_, th, el) :: rest -> has_assign th || has_assign el || has_assign rest
  | _ :: rest -> has_assign rest

let compile_target sc (t : Ast.acc_target) : renv -> Accum.Store.target =
  match t with
  | Ast.T_global name ->
    let tgt = Accum.Store.Global name in
    fun _ -> tgt
  | Ast.T_vertex (alias, name) ->
    let vid = compile_vertex_of sc alias in
    fun env -> Accum.Store.Vertex_acc (name, vid env)

let rec compile_acc_stmt sc locals (s : Ast.acc_stmt) : astmt =
  match s with
  | Ast.A_local (x, e) ->
    let i = List.assoc x locals in
    let ce = compile_expr sc e in
    fun env _ -> env.locals.(i) <- ce env
  | Ast.A_input (t, e) ->
    let ct = compile_target sc t in
    let ce = compile_expr sc e in
    fun env phase ->
      let tgt = ct env in
      let v = ce env in
      Accum.Store.buffer_input phase tgt v env.mult
  | Ast.A_assign (t, e) ->
    let ct = compile_target sc t in
    let ce = compile_expr sc e in
    fun env phase ->
      let tgt = ct env in
      let v = ce env in
      Accum.Store.buffer_assign phase tgt v;
      (match env.overlay with
       | Some o -> Hashtbl.replace o tgt v
       | None -> ())
  | Ast.A_if (c, th, el) ->
    let cc = compile_bool sc c in
    let cth = List.map (compile_acc_stmt sc locals) th in
    let cel = List.map (compile_acc_stmt sc locals) el in
    fun env phase ->
      List.iter (fun f -> f env phase) (if cc env then cth else cel)
  | Ast.A_attr_assign (alias, attr, e) ->
    let ce = compile_expr sc e in
    let lk = lookup_chain sc.sc_binders alias in
    fun env _ ->
      let v = ce env in
      (match (match lk with Some f -> f env | None -> None) with
       | Some (V.Vertex vid) -> G.set_vertex_attr env.ctx.E.graph vid attr v
       | Some (V.Edge eid) -> G.set_edge_attr env.ctx.E.graph eid attr v
       | _ -> E.error "unbound variable %s in attribute assignment" alias)

type cgroup = {
  cg_alias : string option;
  cg_slot : int;  (* meaningful when cg_alias = Some _; -1 = unknown alias *)
  cg_kernel : astmt list;
  cg_nlocals : int;
  cg_overlay : bool;
}

(* ------------------------------------------------------------------ *)
(* Plan ops                                                            *)

type op = {
  op_exec : renv -> unit;
  op_lines : string list;  (* describe lines, indentation baked in *)
  op_total : int;
  op_compiled : int;
}

let indent lines = List.map (fun l -> "  " ^ l) lines

let fallback_op (s : Ast.stmt) label =
  { op_exec = (fun env -> E.exec_stmt env.ctx s);
    op_lines = [ label ^ "  [interpreted]" ];
    op_total = 1;
    op_compiled = 0 }

let sum_total ops = List.fold_left (fun a o -> a + o.op_total) 0 ops
let sum_compiled ops = List.fold_left (fun a o -> a + o.op_compiled) 0 ops
let child_lines ops = List.concat_map (fun o -> indent o.op_lines) ops

(* ------------------------------------------------------------------ *)
(* SELECT compilation                                                  *)

let m_selects = Obs.Metrics.counter "compile.select_blocks"
let h_select_ms = Obs.Metrics.histogram "compile.select_ms"
let m_sharded_accum = Obs.Metrics.counter "compile.accum.sharded_passes"

(* Below this many binding rows a sharded ACCUM pass stays on the driver
   domain (still grouped by shard, so the groupwise-commit path is
   exercised even by small fixtures). *)
let accum_shard_par_threshold = 256

type cout = {
  co_into : string;
  co_distinct : bool;
  co_cols : string list;
  co_aliases : string list;
  co_slots : [ `V of int | `E of int ] list;
  co_bad_alias : string option;
  co_exprs : rx list;
  co_having : (renv -> bool) option;
  co_order : ((renv -> V.t) * bool) list;
}

(* Aliases (vertex or edge) an output expression mentions — the
   interpreter's [expr_aliases] over the binding table's slot arrays. *)
let rec expr_aliases_static va ea (e : Ast.expr) : string list =
  match e with
  | Ast.E_var v | Ast.E_attr (v, _) | Ast.E_vacc (v, _) | Ast.E_vacc_prev (v, _)
    ->
    if E.alias_slot va v >= 0 || E.alias_slot ea v >= 0 then [ v ] else []
  | Ast.E_binop (_, a, b) ->
    expr_aliases_static va ea a @ expr_aliases_static va ea b
  | Ast.E_unop (_, a) -> expr_aliases_static va ea a
  | Ast.E_call (_, args) | Ast.E_tuple args ->
    List.concat_map (expr_aliases_static va ea) args
  | Ast.E_method (base, _, args) ->
    expr_aliases_static va ea base @ List.concat_map (expr_aliases_static va ea) args
  | Ast.E_arrow (ks, vs) -> List.concat_map (expr_aliases_static va ea) (ks @ vs)
  | Ast.E_int _ | Ast.E_float _ | Ast.E_string _ | Ast.E_bool _ | Ast.E_null
  | Ast.E_gacc _ | Ast.E_gacc_prev _ -> []

let column_name (e, alias) =
  match alias with Some a -> a | None -> Ast.expr_to_string e

let sort_keys_cmp (ka, _, _) (kb, _, _) =
  let rec go a b =
    match a, b with
    | [], [] -> 0
    | (va, desc) :: ra, (vb, _) :: rb ->
      let c = V.compare va vb in
      let c = if desc then -c else c in
      if c <> 0 then c else go ra rb
    | _ -> 0
  in
  go ka kb

(* [shard_safe] is the query-level verdict from Analyze: ACCUM phases of
   this block may split into per-shard partials committed groupwise at
   the barrier (read-only block, every declared accumulator
   Spec.shard_exact, no [=] assignment in any ACCUM clause). *)
let compile_select (schema : Pgraph.Schema.t option) ~shard_safe (binding : string option)
    (b : Ast.select_block) : op =
  let v_aliases, e_aliases = E.collect_aliases b.Ast.s_from in
  let nv = Array.length v_aliases and ne = Array.length e_aliases in
  let row_sc = { sc_binders = [ B_row (v_aliases, e_aliases) ] } in
  (* WHERE push-down, decomposed at compile time: single-vertex-alias
     conjuncts become per-candidate probe predicates, the rest a residual
     row filter. *)
  let pushed_tbl, residual_expr =
    match b.Ast.s_where with
    | None -> ([], None)
    | Some cond ->
      let parts = E.and_conjuncts cond in
      let pushable, residual =
        List.partition
          (fun part ->
            let touches_edge =
              List.exists
                (fun a -> E.alias_slot e_aliases a >= 0)
                (E.expr_aliases_of e_aliases part)
            in
            if touches_edge then false
            else
              match E.expr_vertex_aliases_only v_aliases part with
              | Some names -> List.length (List.sort_uniq compare names) = 1
              | None -> false)
          parts
      in
      let by_alias = Hashtbl.create 4 in
      List.iter
        (fun part ->
          match E.expr_vertex_aliases_only v_aliases part with
          | Some (name :: _) ->
            Hashtbl.replace by_alias name
              (part :: (try Hashtbl.find by_alias name with Not_found -> []))
          | _ -> assert false)
        pushable;
      let compiled =
        Hashtbl.fold
          (fun name parts acc ->
            let psc = { sc_binders = [ B_probe name ] } in
            (name, List.map (compile_bool psc) parts) :: acc)
          by_alias []
      in
      let residual_expr =
        match residual with
        | [] -> None
        | first :: rest ->
          Some (List.fold_left (fun acc p -> Ast.E_binop (Ast.And, acc, p)) first rest)
      in
      (compiled, residual_expr)
  in
  let pushed_for alias =
    match List.assoc_opt alias pushed_tbl with Some ps -> ps | None -> []
  in
  let cconjs =
    List.map
      (fun (c : Ast.conjunct) ->
        let src_alias = E.endpoint_alias c.Ast.c_src in
        let dst_alias = E.endpoint_alias c.Ast.c_dst in
        { cj_src_ep = c.Ast.c_src;
          cj_dst_ep = c.Ast.c_dst;
          cj_src_alias = src_alias;
          cj_dst_alias = dst_alias;
          cj_src_slot = E.alias_slot v_aliases src_alias;
          cj_dst_slot = E.alias_slot v_aliases dst_alias;
          cj_edge_slot =
            (match c.Ast.c_edge_alias with
             | Some a -> E.alias_slot e_aliases a
             | None -> -1);
          cj_src_pushed = pushed_for src_alias;
          cj_dst_pushed = pushed_for dst_alias;
          cj_kind =
            (match c.Ast.c_darpe with
             | Darpe.Ast.Step (ty, adir) -> Cj_step (make_step schema ty adir)
             | d when Darpe.Ast.fixed_unique_length d = Some 0 -> Cj_ident d
             | d -> Cj_kleene d) })
      b.Ast.s_from
  in
  let build env =
    match cconjs with
    | [] -> E.error "FROM clause needs at least one pattern"
    | first :: rest ->
      let bt = exec_conjunct env first (fbt_make ~nv ~ne ~cap:0) in
      List.fold_left
        (fun bt cj -> if bt.f_n > 0 then exec_conjunct env cj bt else bt)
        bt rest
  in
  let residual = Option.map (compile_bool row_sc) residual_expr in
  (* ACCUM kernel. *)
  let acc_locals, acc_nlocals = collect_locals b.Ast.s_accum in
  let acc_sc =
    { sc_binders = [ B_locals acc_locals; B_row (v_aliases, e_aliases) ] }
  in
  let acc_kernel = List.map (compile_acc_stmt acc_sc acc_locals) b.Ast.s_accum in
  let acc_overlay = has_assign b.Ast.s_accum in
  (* POST_ACCUM: consecutive statements grouped by driving alias, one
     execution per distinct vertex (statically grouped via Analyze). *)
  let post_groups =
    List.fold_left
      (fun acc stmt ->
        let a =
          match Analyze.post_accum_aliases stmt with [] -> None | x :: _ -> Some x
        in
        match acc with
        | (a', stmts') :: rest when a' = a -> (a', stmt :: stmts') :: rest
        | _ -> (a, [ stmt ]) :: acc)
      [] b.Ast.s_post_accum
    |> List.rev_map (fun (a, ss) -> (a, List.rev ss))
    |> List.rev
  in
  let cgroups =
    List.map
      (fun (alias, stmts) ->
        let locals, nlocals = collect_locals stmts in
        let sc =
          match alias with
          | None -> { sc_binders = [ B_locals locals ] }
          | Some a -> { sc_binders = [ B_probe a; B_locals locals ] }
        in
        { cg_alias = alias;
          cg_slot =
            (match alias with
             | Some a -> E.alias_slot v_aliases a
             | None -> -1);
          cg_kernel = List.map (compile_acc_stmt sc locals) stmts;
          cg_nlocals = nlocals;
          cg_overlay = has_assign stmts })
      post_groups
  in
  let run_kernel env phase kernel = List.iter (fun f -> f env phase) kernel in
  let exec_accum_seq env bt =
    let phase = Accum.Store.begin_phase env.ctx.E.store in
    let locals = Array.make (max 1 acc_nlocals) unset in
    env.locals <- locals;
    let overlay = if acc_overlay then Some (Hashtbl.create 8) else None in
    env.overlay <- overlay;
    for r = 0 to bt.f_n - 1 do
      Interrupt.tick ();
      env.base <- r * bt.f_stride;
      env.mult <- bt.f_mult.(r);
      if acc_nlocals > 0 then Array.fill locals 0 acc_nlocals unset;
      (match overlay with Some o -> Hashtbl.reset o | None -> ());
      run_kernel env phase acc_kernel
    done;
    Accum.Store.commit env.ctx.E.store phase
  in
  (* Sharded ACCUM: rows are grouped by the owning shard of the row's
     head vertex, each group buffers into its own phase (possibly on its
     own domain), and all phases commit in ascending shard order at the
     barrier.  Only taken when Analyze proved the block shard-exact, so
     the groupwise commit is a permutation of a single phase's ops with
     bit-identical results; [Interrupted] mid-pass aborts before any
     commit (never torn). *)
  let exec_accum_sharded env bt part =
    let shards = Shard.Partition.shard_count part in
    let owners = Shard.Partition.owners part in
    let nvg = Array.length owners in
    let counts = Array.make shards 0 in
    let shard_of = Array.make (max 1 bt.f_n) 0 in
    for r = 0 to bt.f_n - 1 do
      let v = bt.f_data.(r * bt.f_stride) in
      let s = if v >= 0 && v < nvg then owners.(v) else 0 in
      shard_of.(r) <- s;
      counts.(s) <- counts.(s) + 1
    done;
    let rows = Array.init shards (fun s -> Array.make counts.(s) 0) in
    let fill = Array.make shards 0 in
    for r = 0 to bt.f_n - 1 do
      let s = shard_of.(r) in
      rows.(s).(fill.(s)) <- r;
      fill.(s) <- fill.(s) + 1
    done;
    let store = env.ctx.E.store in
    let phases = Array.init shards (fun _ -> Accum.Store.begin_phase store) in
    let run_shard s =
      let rs = rows.(s) in
      if Array.length rs > 0 then begin
        let locals = Array.make (max 1 acc_nlocals) unset in
        let senv = { env with locals; overlay = None } in
        let phase = phases.(s) in
        Array.iter
          (fun r ->
            Interrupt.tick ();
            senv.base <- r * bt.f_stride;
            senv.mult <- bt.f_mult.(r);
            if acc_nlocals > 0 then Array.fill locals 0 acc_nlocals unset;
            run_kernel senv phase acc_kernel)
          rs
      end
    in
    let active = ref [] in
    for s = shards - 1 downto 0 do
      if counts.(s) > 0 then active := s :: !active
    done;
    let workers = Accum.Parallel.default_workers (List.length !active) in
    (if workers <= 1 || bt.f_n < accum_shard_par_threshold then
       List.iter run_shard !active
     else
       match !active with
       | [] -> ()
       | first :: rest ->
         let budget = Interrupt.current () in
         let domains =
           List.map
             (fun s ->
               Domain.spawn (fun () ->
                   Interrupt.with_current budget (fun () -> run_shard s)))
             rest
         in
         let mine = try Ok (run_shard first) with e -> Error e in
         let joined =
           List.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains
         in
         (match mine with Error e -> raise e | Ok () -> ());
         List.iter (function Ok () -> () | Error e -> raise e) joined);
    (* barrier: merge per-shard partials, shard order *)
    Array.iter (fun ph -> Accum.Store.commit store ph) phases;
    Obs.Metrics.incr m_sharded_accum 1
  in
  let exec_accum env bt =
    if acc_kernel <> [] then
      Obs.Trace.span "accum" (fun () ->
          if Obs.Trace.enabled () then
            Obs.Trace.set_attr "rows" (Obs.Json.Int bt.f_n);
          match env.ctx.E.partition with
          | Some part
            when shard_safe && nv > 0 && bt.f_n > 0
                 && Shard.Partition.shard_count part > 1 ->
            if Obs.Trace.enabled () then
              Obs.Trace.set_attr "shards"
                (Obs.Json.Int (Shard.Partition.shard_count part));
            exec_accum_sharded env bt part
          | _ -> exec_accum_seq env bt)
  in
  let exec_post env bt =
    if cgroups <> [] then
      Obs.Trace.span "post_accum" (fun () ->
          List.iter
            (fun g ->
              let phase = Accum.Store.begin_phase env.ctx.E.store in
              (match g.cg_alias with
               | None ->
                 let locals = Array.make (max 1 g.cg_nlocals) unset in
                 env.locals <- locals;
                 env.overlay <-
                   (if g.cg_overlay then Some (Hashtbl.create 8) else None);
                 env.mult <- B.one;
                 run_kernel env phase g.cg_kernel
               | Some a ->
                 if g.cg_slot < 0 then
                   E.error "POST_ACCUM references unknown alias %s" a;
                 let seen = Hashtbl.create 64 in
                 let locals = Array.make (max 1 g.cg_nlocals) unset in
                 env.locals <- locals;
                 let overlay =
                   if g.cg_overlay then Some (Hashtbl.create 8) else None
                 in
                 env.overlay <- overlay;
                 env.mult <- B.one;
                 for r = 0 to bt.f_n - 1 do
                   Interrupt.tick ();
                   let v = bt.f_data.((r * bt.f_stride) + g.cg_slot) in
                   if v >= 0 && not (Hashtbl.mem seen v) then begin
                     Hashtbl.add seen v ();
                     env.probe <- v;
                     if g.cg_nlocals > 0 then
                       Array.fill locals 0 g.cg_nlocals unset;
                     (match overlay with
                      | Some o -> Hashtbl.reset o
                      | None -> ());
                     run_kernel env phase g.cg_kernel
                   end
                 done);
              Accum.Store.commit env.ctx.E.store phase)
            cgroups)
  in
  (* Outputs. *)
  let climit = Option.map (compile_expr gscope) b.Ast.s_limit in
  let signature = Ast.select_signature b in
  (* HAVING / ORDER BY for the vertex-set target, compiled in the probe
     scope of the selected alias. *)
  let chaving_v =
    match b.Ast.s_target with
    | Ast.Sel_vertices (_, alias, _) ->
      let psc = { sc_binders = [ B_probe alias ] } in
      Option.map (compile_bool psc) b.Ast.s_having
    | Ast.Sel_outputs _ -> None
  in
  let corder_v =
    match b.Ast.s_target with
    | Ast.Sel_vertices (_, alias, _) ->
      let psc = { sc_binders = [ B_probe alias ] } in
      List.map (fun (e, desc) -> (compile_expr psc e, desc)) b.Ast.s_order_by
    | Ast.Sel_outputs _ -> []
  in
  let couts =
    match b.Ast.s_target with
    | Ast.Sel_vertices _ -> []
    | Ast.Sel_outputs outputs ->
      List.map
        (fun (o : Ast.output_spec) ->
          let aliases =
            List.sort_uniq compare
              (List.concat_map
                 (fun (e, _) -> expr_aliases_static v_aliases e_aliases e)
                 o.Ast.o_exprs)
          in
          let bad = ref None in
          let slots =
            List.map
              (fun a ->
                let vs = E.alias_slot v_aliases a in
                if vs >= 0 then `V vs
                else begin
                  let es = E.alias_slot e_aliases a in
                  if es >= 0 then `E es
                  else begin
                    if !bad = None then bad := Some a;
                    `V 0
                  end
                end)
              aliases
          in
          let csc =
            { sc_binders =
                [ B_combo
                    (List.mapi
                       (fun i a -> (a, i, E.alias_slot v_aliases a < 0))
                       aliases) ] }
          in
          let applicable_order =
            List.filter
              (fun (key, _) ->
                List.for_all
                  (fun a -> List.mem a aliases)
                  (expr_aliases_static v_aliases e_aliases key))
              b.Ast.s_order_by
          in
          { co_into = o.Ast.o_into;
            co_distinct = o.Ast.o_distinct;
            co_cols = List.map column_name o.Ast.o_exprs;
            co_aliases = aliases;
            co_slots = slots;
            co_bad_alias = !bad;
            co_exprs = List.map (fun (e, _) -> compile_expr csc e) o.Ast.o_exprs;
            co_having = Option.map (compile_bool csc) b.Ast.s_having;
            co_order =
              List.map
                (fun (e, desc) -> (compile_expr csc e, desc))
                applicable_order })
        outputs
  in
  let exec_outputs env bt =
    match b.Ast.s_target with
    | Ast.Sel_vertices (_, alias, into) ->
      let slot = E.alias_slot v_aliases alias in
      if slot < 0 then E.error "SELECT %s: unknown alias" alias;
      let seen = Hashtbl.create 64 in
      let buf = ib_make () in
      for r = 0 to bt.f_n - 1 do
        let v = bt.f_data.((r * bt.f_stride) + slot) in
        if v >= 0 && not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          ib_push buf v
        end
      done;
      let vids = ib_contents buf in
      let vids =
        match chaving_v with
        | None -> vids
        | Some pred ->
          let b2 = ib_make () in
          Array.iter
            (fun v ->
              env.probe <- v;
              if pred env then ib_push b2 v)
            vids;
          ib_contents b2
      in
      let vids =
        match corder_v with
        | [] -> vids
        | keys ->
          let with_keys =
            Array.to_list vids
            |> List.map (fun v ->
                   env.probe <- v;
                   ( List.map (fun (ck, desc) -> (ck env, desc)) keys,
                     [| V.Int v |], v ))
          in
          let sorted = List.stable_sort sort_keys_cmp with_keys in
          Array.of_list (List.map (fun (_, _, v) -> v) sorted)
      in
      let vids =
        match climit with
        | None -> vids
        | Some cl ->
          let n = V.to_int (cl env) in
          if Array.length vids <= n then vids
          else Array.sub vids 0 (max 0 n)
      in
      if Obs.Trace.enabled () then
        Obs.Trace.set_attr "out_vertices" (Obs.Json.Int (Array.length vids));
      let bind name = Hashtbl.replace env.ctx.E.vars name (E.R_vset vids) in
      Option.iter bind binding;
      Option.iter bind into
    | Ast.Sel_outputs _ ->
      List.iter
        (fun (o : cout) ->
          (match o.co_bad_alias with
           | Some a -> E.error "unknown alias %s in SELECT" a
           | None -> ());
          let combos =
            if o.co_aliases = [] then [ [||] ]  (* pure-global: one row *)
            else begin
              let seen = Hashtbl.create 64 in
              let out = ref [] in
              for r = 0 to bt.f_n - 1 do
                let vals =
                  List.map
                    (function
                      | `V i -> bt.f_data.((r * bt.f_stride) + i)
                      | `E i -> bt.f_data.((r * bt.f_stride) + bt.f_nv + i))
                    o.co_slots
                in
                if List.for_all (fun v -> v >= 0) vals
                   && not (Hashtbl.mem seen vals)
                then begin
                  Hashtbl.add seen vals ();
                  out := Array.of_list vals :: !out
                end
              done;
              List.rev !out
            end
          in
          let combos =
            match o.co_having with
            | None -> combos
            | Some pred ->
              List.filter
                (fun c ->
                  env.combo <- c;
                  pred env)
                combos
          in
          let rows =
            List.map
              (fun c ->
                env.combo <- c;
                (Array.of_list (List.map (fun ce -> ce env) o.co_exprs), c))
              combos
          in
          let rows =
            match o.co_order with
            | [] -> rows
            | keys ->
              let with_keys =
                List.map
                  (fun (row, c) ->
                    env.combo <- c;
                    (List.map (fun (ck, desc) -> (ck env, desc)) keys, row, c))
                  rows
              in
              List.map
                (fun (_, row, c) -> (row, c))
                (List.stable_sort sort_keys_cmp with_keys)
          in
          let rows =
            match climit with
            | None -> rows
            | Some cl ->
              let n = V.to_int (cl env) in
              List.filteri (fun i _ -> i < n) rows
          in
          let table = Table.create o.co_cols (List.map fst rows) in
          let table = if o.co_distinct then Table.distinct table else table in
          env.ctx.E.tables <- (o.co_into, table) :: env.ctx.E.tables;
          Hashtbl.replace env.ctx.E.vars o.co_into (E.R_table table))
        couts
  in
  let exec_inner env =
    let ctx = env.ctx in
    if ctx.E.primed <> [] then Accum.Store.save_prev ctx.E.store ctx.E.primed;
    let bt = Obs.Trace.span "match" (fun () -> build env) in
    env.data <- bt.f_data;
    if Obs.Trace.enabled () then Obs.Trace.set_attr "rows" (Obs.Json.Int bt.f_n);
    (match residual with
     | None -> ()
     | Some pred ->
       let w = ref 0 in
       for r = 0 to bt.f_n - 1 do
         env.base <- r * bt.f_stride;
         if pred env then begin
           if !w <> r then begin
             Array.blit bt.f_data (r * bt.f_stride) bt.f_data (!w * bt.f_stride)
               bt.f_stride;
             bt.f_mult.(!w) <- bt.f_mult.(r)
           end;
           incr w
         end
       done;
       bt.f_n <- !w;
       if Obs.Trace.enabled () then
         Obs.Trace.set_attr "rows_after_where" (Obs.Json.Int bt.f_n));
    exec_accum env bt;
    env.overlay <- None;
    exec_post env bt;
    env.overlay <- None;
    exec_outputs env bt
  in
  let op_exec env =
    Interrupt.tick ();
    Obs.Metrics.incr m_selects 1;
    Obs.Metrics.time h_select_ms (fun () ->
        if not (Obs.Trace.enabled ()) then exec_inner env
        else
          Obs.Trace.span "select" (fun () ->
              Obs.Trace.set_attr "block" (Obs.Json.Str signature);
              (match binding with
               | Some x -> Obs.Trace.set_attr "binds" (Obs.Json.Str x)
               | None -> ());
              exec_inner env))
  in
  (* Describe lines + op accounting. *)
  let conj_lines =
    List.map
      (fun cj ->
        match cj.cj_kind with
        | Cj_step st ->
          Printf.sprintf "step %s -(%s)- %s%s" cj.cj_src_alias
            (match st.st_ty with Some t -> t | None -> "_")
            cj.cj_dst_alias
            (match st.st_static with
             | Some _ -> " [syms@install]"
             | None -> " [syms@invoke]")
        | Cj_ident d ->
          Printf.sprintf "identity %s -(%s)- %s [empty-word DFA folded @install]"
            cj.cj_src_alias (Darpe.Ast.to_string d) cj.cj_dst_alias
        | Cj_kleene d ->
          Printf.sprintf "dfa-product %s -(%s)- %s" cj.cj_src_alias
            (Darpe.Ast.to_string d) cj.cj_dst_alias)
      cconjs
  in
  let where_line =
    let pushed_names = List.map fst pushed_tbl |> List.sort compare in
    match pushed_names, residual_expr with
    | [], None -> []
    | names, res ->
      [ Printf.sprintf "where:%s%s"
          (if names = [] then ""
           else " pushed[" ^ String.concat "," names ^ "]")
          (if res = None then "" else " residual") ]
  in
  let accum_line =
    if b.Ast.s_accum = [] then []
    else
      [ Printf.sprintf "accum: %d stmts (locals %d%s)"
          (List.length b.Ast.s_accum) acc_nlocals
          (if acc_overlay then ", overlay" else "") ]
  in
  let post_line =
    if cgroups = [] then []
    else [ Printf.sprintf "post-accum: %d groups" (List.length cgroups) ]
  in
  let out_line =
    match b.Ast.s_target with
    | Ast.Sel_vertices (_, alias, _) -> [ "emit: vertex set " ^ alias ]
    | Ast.Sel_outputs outs ->
      [ "emit: tables ["
        ^ String.concat ", " (List.map (fun o -> o.Ast.o_into) outs)
        ^ "]" ]
  in
  let n_inner =
    List.length cconjs + List.length b.Ast.s_accum
    + List.length b.Ast.s_post_accum
    + match b.Ast.s_target with
      | Ast.Sel_vertices _ -> 1
      | Ast.Sel_outputs outs -> List.length outs
  in
  { op_exec;
    op_lines =
      ("select " ^ signature)
      :: indent (conj_lines @ where_line @ accum_line @ post_line @ out_line);
    op_total = 1 + n_inner;
    op_compiled = 1 + n_inner }

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)

let set_label x = function
  | Ast.Set_types types -> Printf.sprintf "%s = {%s}" x (String.concat ", " types)
  | Ast.Set_copy y -> Printf.sprintf "%s = %s" x y
  | Ast.Set_op (op, a, b) ->
    Printf.sprintf "%s = %s %s %s" x a
      (match op with
       | Ast.Op_union -> "UNION"
       | Ast.Op_intersect -> "INTERSECT"
       | Ast.Op_minus -> "MINUS")
      b

let resolve_set_types ctx types =
  match types with
  | [ "*" ] -> Array.init (G.n_vertices ctx.E.graph) (fun i -> i)
  | _ ->
    Array.concat
      (List.map
         (fun ty ->
           match Pgraph.Schema.find_vertex_type (G.schema ctx.E.graph) ty with
           | Some vt -> G.vertices_of_type ctx.E.graph vt.Pgraph.Schema.vt_id
           | None -> E.error "unknown vertex type %s" ty)
         types)

let rec compile_stmt (schema : Pgraph.Schema.t option) ~shard_safe
    (s : Ast.stmt) : op =
  match s with
  | Ast.S_select (binding, blk) when blk.Ast.s_group_by = [] ->
    compile_select schema ~shard_safe binding blk
  | Ast.S_select (_, blk) ->
    fallback_op s ("select (group-by) " ^ Ast.select_signature blk)
  | Ast.S_print _ -> fallback_op s "print"
  | Ast.S_insert (ty, _, _) -> fallback_op s ("insert into " ^ ty)
  | Ast.S_acc_decl d ->
    let cinit = Option.map (compile_expr gscope) d.Ast.d_init in
    let names =
      String.concat ", "
        (List.map
           (fun (g, n) -> (if g then "@@" else "@") ^ n)
           d.Ast.d_names)
    in
    { op_exec =
        (fun env ->
          Interrupt.tick ();
          let ctx = env.ctx in
          let init = match cinit with None -> None | Some ce -> Some (ce env) in
          List.iter
            (fun (is_global, name) ->
              if is_global then begin
                Accum.Store.declare_global ctx.E.store name d.Ast.d_spec;
                Option.iter
                  (fun v ->
                    Accum.Store.assign_now ctx.E.store (Accum.Store.Global name) v)
                  init
              end
              else begin
                Accum.Store.declare_vertex ctx.E.store name d.Ast.d_spec
                  ~n_vertices:(G.n_vertices ctx.E.graph);
                Option.iter (Accum.Store.set_vertex_init ctx.E.store name) init
              end)
            d.Ast.d_names);
      op_lines = [ "accum-decl " ^ names ];
      op_total = 1;
      op_compiled = 1 }
  | Ast.S_set_assign (x, src) ->
    let exec =
      match src with
      | Ast.Set_types types ->
        fun env ->
          Hashtbl.replace env.ctx.E.vars x
            (E.R_vset (resolve_set_types env.ctx types))
      | Ast.Set_copy y ->
        fun env ->
          (match Hashtbl.find_opt env.ctx.E.vars y with
           | Some rv -> Hashtbl.replace env.ctx.E.vars x rv
           | None -> E.error "unbound set variable %s" y)
      | Ast.Set_op (op, a, b) ->
        fun env ->
          let resolve name =
            match Hashtbl.find_opt env.ctx.E.vars name with
            | Some (E.R_vset vs) -> vs
            | Some _ -> E.error "%s is not a vertex set" name
            | None ->
              (match
                 Pgraph.Schema.find_vertex_type (G.schema env.ctx.E.graph) name
               with
               | Some vt ->
                 G.vertices_of_type env.ctx.E.graph vt.Pgraph.Schema.vt_id
               | None -> E.error "unbound set variable %s" name)
          in
          let va = resolve a and vb = resolve b in
          let in_b = Hashtbl.create (Array.length vb) in
          Array.iter (fun v -> Hashtbl.replace in_b v ()) vb;
          let result =
            match op with
            | Ast.Op_union ->
              let seen = Hashtbl.create (Array.length va + Array.length vb) in
              let out = ref [] in
              Array.iter
                (fun v ->
                  if not (Hashtbl.mem seen v) then begin
                    Hashtbl.add seen v ();
                    out := v :: !out
                  end)
                (Array.append va vb);
              Array.of_list (List.rev !out)
            | Ast.Op_intersect ->
              Array.of_list (List.filter (Hashtbl.mem in_b) (Array.to_list va))
            | Ast.Op_minus ->
              Array.of_list
                (List.filter (fun v -> not (Hashtbl.mem in_b v)) (Array.to_list va))
          in
          Hashtbl.replace env.ctx.E.vars x (E.R_vset result)
    in
    { op_exec = (fun env -> Interrupt.tick (); exec env);
      op_lines = [ "set " ^ set_label x src ];
      op_total = 1;
      op_compiled = 1 }
  | Ast.S_gacc_assign (name, is_input, e) ->
    let ce = compile_expr gscope e in
    let tgt = Accum.Store.Global name in
    { op_exec =
        (fun env ->
          Interrupt.tick ();
          let v = ce env in
          if is_input then Accum.Store.input_now env.ctx.E.store tgt v
          else Accum.Store.assign_now env.ctx.E.store tgt v);
      op_lines = [ Printf.sprintf "@@%s %s ..." name (if is_input then "+=" else "=") ];
      op_total = 1;
      op_compiled = 1 }
  | Ast.S_let (x, e) ->
    let ce = compile_expr gscope e in
    let exec =
      match e with
      | Ast.E_var y ->
        fun env ->
          if Hashtbl.mem env.ctx.E.vars y then
            Hashtbl.replace env.ctx.E.vars x (Hashtbl.find env.ctx.E.vars y)
          else Hashtbl.replace env.ctx.E.vars x (E.R_scalar (ce env))
      | _ -> fun env -> Hashtbl.replace env.ctx.E.vars x (E.R_scalar (ce env))
    in
    { op_exec = (fun env -> Interrupt.tick (); exec env);
      op_lines = [ "let " ^ x ];
      op_total = 1;
      op_compiled = 1 }
  | Ast.S_while (cond, limit, body) ->
    let ccond = compile_bool gscope cond in
    let climit = Option.map (compile_expr gscope) limit in
    let cbody = List.map (compile_stmt schema ~shard_safe) body in
    { op_exec =
        (fun env ->
          Interrupt.tick ();
          let max_iters =
            match climit with None -> max_int | Some ce -> V.to_int (ce env)
          in
          let i = ref 0 in
          Obs.Trace.span "while" (fun () ->
              while !i < max_iters && ccond env do
                Interrupt.tick ();
                Obs.Trace.span "iter" (fun () ->
                    Obs.Trace.set_attr "i" (Obs.Json.Int !i);
                    List.iter (fun o -> o.op_exec env) cbody);
                incr i
              done;
              Obs.Trace.set_attr "iterations" (Obs.Json.Int !i)));
      op_lines = ("while " ^ Ast.expr_to_string cond) :: child_lines cbody;
      op_total = 1 + sum_total cbody;
      op_compiled = 1 + sum_compiled cbody }
  | Ast.S_if (cond, th, el) ->
    let ccond = compile_bool gscope cond in
    let cth = List.map (compile_stmt schema ~shard_safe) th in
    let cel = List.map (compile_stmt schema ~shard_safe) el in
    { op_exec =
        (fun env ->
          Interrupt.tick ();
          List.iter (fun o -> o.op_exec env) (if ccond env then cth else cel));
      op_lines =
        (("if " ^ Ast.expr_to_string cond) :: child_lines cth)
        @ (if cel = [] then [] else "else" :: child_lines cel);
      op_total = 1 + sum_total cth + sum_total cel;
      op_compiled = 1 + sum_compiled cth + sum_compiled cel }
  | Ast.S_foreach (x, e, body) ->
    let ce = compile_expr gscope e in
    let cbody = List.map (compile_stmt schema ~shard_safe) body in
    { op_exec =
        (fun env ->
          Interrupt.tick ();
          let ctx = env.ctx in
          let of_value = function
            | V.Vlist l -> l
            | V.Vtuple a -> Array.to_list a
            | v -> [ v ]
          in
          let items =
            match e with
            | Ast.E_var y ->
              (match Hashtbl.find_opt ctx.E.vars y with
               | Some (E.R_vset vs) ->
                 Array.to_list (Array.map (fun v -> V.Vertex v) vs)
               | _ -> of_value (ce env))
            | _ -> of_value (ce env)
          in
          List.iter
            (fun item ->
              Hashtbl.replace ctx.E.vars x (E.R_scalar item);
              List.iter (fun o -> o.op_exec env) cbody)
            items);
      op_lines =
        (Printf.sprintf "foreach %s in %s" x (Ast.expr_to_string e))
        :: child_lines cbody;
      op_total = 1 + sum_total cbody;
      op_compiled = 1 + sum_compiled cbody }
  | Ast.S_return e ->
    let ce = compile_expr gscope e in
    let exec =
      match e with
      | Ast.E_var name ->
        fun env ->
          let rv =
            if Hashtbl.mem env.ctx.E.vars name then
              Hashtbl.find env.ctx.E.vars name
            else E.R_scalar (ce env)
          in
          env.ctx.E.returned <- Some rv;
          raise E.Returned
      | _ ->
        fun env ->
          env.ctx.E.returned <- Some (E.R_scalar (ce env));
          raise E.Returned
    in
    { op_exec = (fun env -> Interrupt.tick (); exec env);
      op_lines = [ "return " ^ Ast.expr_to_string e ];
      op_total = 1;
      op_compiled = 1 }

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)

type plan = {
  p_query : Ast.query option;
  p_primed : string list;
  p_ops : op list;
  p_compile_ms : float;
  p_total : int;
  p_compiled : int;
  p_describe : string;
  p_shard_safe : bool;
}

let shard_safe plan = plan.p_shard_safe

let finish_plan ?(shard_safe = false) query primed ops t0 =
  let total = sum_total ops and compiled = sum_compiled ops in
  let header =
    Printf.sprintf "plan: %d ops (%d compiled, %d interpreted)" total compiled
      (total - compiled)
  in
  { p_query = query;
    p_primed = primed;
    p_ops = ops;
    p_compile_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
    p_total = total;
    p_compiled = compiled;
    p_describe =
      String.concat "\n" (header :: List.concat_map (fun o -> indent o.op_lines) ops);
    p_shard_safe = shard_safe }

let compile ?schema (q : Ast.query) =
  let t0 = Unix.gettimeofday () in
  let info = Analyze.check_query q in
  (match info.Analyze.errors with
   | [] -> ()
   | errs -> E.error "analysis failed: %s" (String.concat "; " errs));
  let shard_safe = info.Analyze.shard_safe in
  let ops = List.map (compile_stmt schema ~shard_safe) q.Ast.q_body in
  finish_plan ~shard_safe (Some q) info.Analyze.primed ops t0

let compile_block ?schema stmts =
  let t0 = Unix.gettimeofday () in
  let info = Analyze.check_block stmts in
  (match info.Analyze.errors with
   | [] -> ()
   | errs -> E.error "analysis failed: %s" (String.concat "; " errs));
  let shard_safe = info.Analyze.shard_safe in
  let ops = List.map (compile_stmt schema ~shard_safe) stmts in
  finish_plan ~shard_safe None info.Analyze.primed ops t0

let run plan ?semantics ?partition ~params graph =
  let sem =
    match plan.p_query with
    | Some q ->
      E.check_params q params;
      E.query_semantics ?semantics q
    | None -> (match semantics with Some s -> s | None -> Sem.All_shortest)
  in
  let ctx = E.make_ctx ?partition graph sem params plan.p_primed in
  let env =
    { ctx;
      data = [||];
      base = 0;
      mult = B.one;
      locals = [||];
      probe = -1;
      combo = [||];
      overlay = None }
  in
  (try List.iter (fun op -> op.op_exec env) plan.p_ops with
   | E.Returned -> ()
   | V.Type_error msg -> E.error "type error: %s" msg);
  E.finish ctx

let compile_ms plan = plan.p_compile_ms
let plan_ops plan = plan.p_total
let compiled_ops plan = plan.p_compiled
let describe plan = plan.p_describe
