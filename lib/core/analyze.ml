type info = {
  errors : string list;
  warnings : string list;
  tractable : bool;
  primed : string list;
  mutating : bool;
  shard_safe : bool;
}

(* Mutation classification: a query is mutating iff evaluation can write
   graph state — an attribute assignment in ACCUM/POST_ACCUM or an INSERT
   anywhere in the body (both can hide under control flow). *)
let rec acc_stmt_mutates = function
  | Ast.A_attr_assign _ -> true
  | Ast.A_if (_, th, el) ->
    List.exists acc_stmt_mutates th || List.exists acc_stmt_mutates el
  | Ast.A_input _ | Ast.A_assign _ | Ast.A_local _ -> false

let rec stmt_mutates = function
  | Ast.S_insert _ -> true
  | Ast.S_select (_, b) ->
    List.exists acc_stmt_mutates b.Ast.s_accum
    || List.exists acc_stmt_mutates b.Ast.s_post_accum
  | Ast.S_while (_, _, body) -> List.exists stmt_mutates body
  | Ast.S_if (_, th, el) -> List.exists stmt_mutates th || List.exists stmt_mutates el
  | Ast.S_foreach (_, _, body) -> List.exists stmt_mutates body
  | Ast.S_acc_decl _ | Ast.S_set_assign _ | Ast.S_gacc_assign _ | Ast.S_let _
  | Ast.S_print _ | Ast.S_return _ -> false

let block_mutates stmts = List.exists stmt_mutates stmts

(* Shard-safety classification: may ACCUM phases be split into per-shard
   partials and committed groupwise at the barrier?  Grouping permutes
   the op sequence, so three things disqualify a block: a mutating
   statement (writes ordered against graph state), a declared accumulator
   whose fold isn't bit-exact under permutation (Spec.shard_exact — the
   plan-time check the paper's MPP story hinges on), or an [=] assignment
   inside an ACCUM clause (last-writer-wins, order-sensitive regardless
   of the accumulator's spec).  POST_ACCUM always runs sequentially, so
   assignments there don't count. *)
let rec acc_stmt_assigns = function
  | Ast.A_assign _ -> true
  | Ast.A_if (_, th, el) -> List.exists acc_stmt_assigns th || List.exists acc_stmt_assigns el
  | Ast.A_input _ | Ast.A_local _ | Ast.A_attr_assign _ -> false

let rec stmt_accum_assigns = function
  | Ast.S_select (_, b) -> List.exists acc_stmt_assigns b.Ast.s_accum
  | Ast.S_while (_, _, body) | Ast.S_foreach (_, _, body) ->
    List.exists stmt_accum_assigns body
  | Ast.S_if (_, th, el) ->
    List.exists stmt_accum_assigns th || List.exists stmt_accum_assigns el
  | Ast.S_acc_decl _ | Ast.S_set_assign _ | Ast.S_gacc_assign _ | Ast.S_let _
  | Ast.S_print _ | Ast.S_return _ | Ast.S_insert _ -> false

type acc_kind = Kglobal | Kvertex

type env = {
  mutable decls : (string * (acc_kind * Accum.Spec.t)) list;
  mutable errs : string list;
  mutable warns : string list;
  mutable is_tractable : bool;
  mutable primed_names : string list;
  mutable has_unbounded_darpe : bool;
}

let err env msg = env.errs <- msg :: env.errs
let warn env msg = env.warns <- msg :: env.warns

let note_primed env name =
  if not (List.mem name env.primed_names) then env.primed_names <- name :: env.primed_names

let lookup env name = List.assoc_opt name env.decls

let check_acc_ref env kind name =
  match lookup env name, kind with
  | Some (Kglobal, _), Kglobal | Some (Kvertex, _), Kvertex -> ()
  | Some (Kglobal, _), Kvertex ->
    err env (Printf.sprintf "@%s is declared as a global accumulator (use @@%s)" name name)
  | Some (Kvertex, _), Kglobal ->
    err env (Printf.sprintf "@@%s is declared as a vertex accumulator (use .@%s)" name name)
  | None, Kglobal -> err env (Printf.sprintf "undeclared global accumulator @@%s" name)
  | None, Kvertex -> err env (Printf.sprintf "undeclared vertex accumulator @%s" name)

let rec walk_expr env (e : Ast.expr) =
  match e with
  | Ast.E_int _ | Ast.E_float _ | Ast.E_string _ | Ast.E_bool _ | Ast.E_null | Ast.E_var _
  | Ast.E_attr _ -> ()
  | Ast.E_vacc (_, name) -> check_acc_ref env Kvertex name
  | Ast.E_vacc_prev (_, name) ->
    check_acc_ref env Kvertex name;
    note_primed env name
  | Ast.E_gacc name -> check_acc_ref env Kglobal name
  | Ast.E_gacc_prev name ->
    check_acc_ref env Kglobal name;
    note_primed env name
  | Ast.E_binop (_, a, b) ->
    walk_expr env a;
    walk_expr env b
  | Ast.E_unop (_, a) -> walk_expr env a
  | Ast.E_call (_, args) -> List.iter (walk_expr env) args
  | Ast.E_method (base, _, args) ->
    walk_expr env base;
    List.iter (walk_expr env) args
  | Ast.E_tuple es -> List.iter (walk_expr env) es
  | Ast.E_arrow (ks, vs) ->
    List.iter (walk_expr env) ks;
    List.iter (walk_expr env) vs

let walk_target env = function
  | Ast.T_global name -> check_acc_ref env Kglobal name
  | Ast.T_vertex (_, name) -> check_acc_ref env Kvertex name

let rec walk_acc_stmt env (s : Ast.acc_stmt) =
  match s with
  | Ast.A_input (t, e) | Ast.A_assign (t, e) ->
    walk_target env t;
    walk_expr env e
  | Ast.A_local (_, e) -> walk_expr env e
  | Ast.A_if (c, th, el) ->
    walk_expr env c;
    List.iter (walk_acc_stmt env) th;
    List.iter (walk_acc_stmt env) el
  | Ast.A_attr_assign (_, _, e) -> walk_expr env e

(* Vertex aliases a POST_ACCUM statement touches: used to enforce the
   one-alias-per-statement rule GSQL documents. *)
let rec post_accum_aliases (s : Ast.acc_stmt) =
  let rec of_expr (e : Ast.expr) =
    match e with
    | Ast.E_vacc (v, _) | Ast.E_vacc_prev (v, _) | Ast.E_attr (v, _) -> [ v ]
    | Ast.E_binop (_, a, b) -> of_expr a @ of_expr b
    | Ast.E_unop (_, a) -> of_expr a
    | Ast.E_call (_, args) -> List.concat_map of_expr args
    | Ast.E_method (base, _, args) -> of_expr base @ List.concat_map of_expr args
    | Ast.E_tuple es | Ast.E_arrow (es, []) -> List.concat_map of_expr es
    | Ast.E_arrow (ks, vs) -> List.concat_map of_expr (ks @ vs)
    | _ -> []
  in
  match s with
  | Ast.A_input (Ast.T_vertex (v, _), e) | Ast.A_assign (Ast.T_vertex (v, _), e) ->
    v :: of_expr e
  | Ast.A_input (Ast.T_global _, e) | Ast.A_assign (Ast.T_global _, e) | Ast.A_local (_, e) ->
    of_expr e
  | Ast.A_attr_assign (v, _, e) -> v :: of_expr e
  | Ast.A_if (c, th, el) ->
    of_expr c @ List.concat_map post_accum_aliases th @ List.concat_map post_accum_aliases el

let sort_uniq l = List.sort_uniq compare l

let walk_select env (b : Ast.select_block) =
  List.iter
    (fun (c : Ast.conjunct) ->
      (match Darpe.Ast.max_path_length c.Ast.c_darpe with
       | None -> env.has_unbounded_darpe <- true
       | Some _ -> ());
      (match c.Ast.c_darpe, c.Ast.c_edge_alias with
       | Darpe.Ast.Step _, _ -> ()
       | _, Some alias ->
         err env
           (Printf.sprintf "edge alias %s bound to a multi-edge pattern %s" alias
              (Darpe.Ast.to_string c.Ast.c_darpe))
       | _, None -> ()))
    b.Ast.s_from;
  Option.iter (walk_expr env) b.Ast.s_where;
  List.iter (walk_acc_stmt env) b.Ast.s_accum;
  List.iter (walk_acc_stmt env) b.Ast.s_post_accum;
  List.iter
    (fun stmt ->
      let aliases = sort_uniq (post_accum_aliases stmt) in
      if List.length aliases > 1 then
        err env
          (Printf.sprintf "POST_ACCUM statement references several vertex aliases (%s)"
             (String.concat ", " aliases)))
    b.Ast.s_post_accum;
  List.iter (walk_expr env) b.Ast.s_group_by;
  (match b.Ast.s_target, b.Ast.s_group_by with
   | Ast.Sel_vertices _, _ :: _ ->
     err env "GROUP BY requires a multi-output SELECT (project aggregates INTO a table)"
   | _ -> ());
  Option.iter (walk_expr env) b.Ast.s_having;
  List.iter (fun (e, _) -> walk_expr env e) b.Ast.s_order_by;
  Option.iter (walk_expr env) b.Ast.s_limit;
  (match b.Ast.s_target with
   | Ast.Sel_vertices _ -> ()
   | Ast.Sel_outputs outputs ->
     List.iter (fun o -> List.iter (fun (e, _) -> walk_expr env e) o.Ast.o_exprs) outputs)

let order_dependent_decl (spec : Accum.Spec.t) = not (Accum.Spec.order_invariant spec)

let rec walk_stmt env (s : Ast.stmt) =
  match s with
  | Ast.S_acc_decl d ->
    List.iter
      (fun (is_global, name) ->
        let kind = if is_global then Kglobal else Kvertex in
        (match lookup env name with
         | Some _ -> warn env (Printf.sprintf "accumulator %s re-declared" name)
         | None -> ());
        env.decls <- (name, (kind, d.Ast.d_spec)) :: env.decls)
      d.Ast.d_names;
    Option.iter (walk_expr env) d.Ast.d_init
  | Ast.S_set_assign _ -> ()
  | Ast.S_select (_, b) -> walk_select env b
  | Ast.S_gacc_assign (name, _, e) ->
    check_acc_ref env Kglobal name;
    walk_expr env e
  | Ast.S_let (_, e) -> walk_expr env e
  | Ast.S_while (c, limit, body) ->
    walk_expr env c;
    Option.iter (walk_expr env) limit;
    List.iter (walk_stmt env) body
  | Ast.S_if (c, th, el) ->
    walk_expr env c;
    List.iter (walk_stmt env) th;
    List.iter (walk_stmt env) el
  | Ast.S_foreach (_, e, body) ->
    walk_expr env e;
    List.iter (walk_stmt env) body
  | Ast.S_print items ->
    List.iter
      (function
        | Ast.P_expr (e, _) -> walk_expr env e
        | Ast.P_proj (_, es) -> List.iter (walk_expr env) es)
      items
  | Ast.S_return e -> walk_expr env e
  | Ast.S_insert (_, _, values) -> List.iter (walk_expr env) values

let finish env =
  let uses_order_dependent =
    List.exists (fun (_, (_, spec)) -> order_dependent_decl spec) env.decls
  in
  if env.has_unbounded_darpe && uses_order_dependent then begin
    env.is_tractable <- false;
    warn env
      "query combines unbounded path patterns with order-dependent accumulators \
       (List/Array/SumAccum<string>): outside the tractable class of Theorem 7.1"
  end;
  { errors = List.rev env.errs;
    warnings = List.rev env.warns;
    tractable = env.is_tractable;
    primed = List.rev env.primed_names;
    mutating = false;
    shard_safe = false }

let fresh_env () =
  { decls = [];
    errs = [];
    warns = [];
    is_tractable = true;
    primed_names = [];
    has_unbounded_darpe = false }

let check_block stmts =
  let env = fresh_env () in
  List.iter (walk_stmt env) stmts;
  let mutating = block_mutates stmts in
  let shard_safe =
    (not mutating)
    && List.for_all (fun (_, (_, spec)) -> Accum.Spec.shard_exact spec) env.decls
    && not (List.exists stmt_accum_assigns stmts)
  in
  { (finish env) with mutating; shard_safe }

let check_query (q : Ast.query) = check_block q.Ast.q_body
