let classify_darpe (d : Darpe.Ast.t) =
  match d with
  | Darpe.Ast.Step _ -> "single step -> direct adjacency scan (binds edge variables)"
  | _ ->
    (match Darpe.Ast.fixed_unique_length d, Darpe.Ast.max_path_length d with
     | Some n, _ ->
       Printf.sprintf
         "fixed-unique-length (%d) -> product traversal; all-shortest = unrestricted semantics" n
     | None, Some m ->
       Printf.sprintf "bounded repetition (max %d) -> graph x DFA product traversal" m
     | None, None ->
       "unbounded Kleene -> graph x DFA product; counting engine polynomial, enumeration \
        engines exponential in matching paths")

(* A WHERE conjunct pushes down when it touches exactly one vertex alias of
   the pattern (mirrors Eval.split_where). *)
let rec and_conjuncts (e : Ast.expr) =
  match e with
  | Ast.E_binop (Ast.And, a, b) -> and_conjuncts a @ and_conjuncts b
  | other -> [ other ]

let rec expr_vars (e : Ast.expr) =
  match e with
  | Ast.E_var v | Ast.E_attr (v, _) | Ast.E_vacc (v, _) | Ast.E_vacc_prev (v, _) -> [ v ]
  | Ast.E_binop (_, a, b) -> expr_vars a @ expr_vars b
  | Ast.E_unop (_, a) -> expr_vars a
  | Ast.E_call (_, args) | Ast.E_tuple args -> List.concat_map expr_vars args
  | Ast.E_method (base, _, args) -> expr_vars base @ List.concat_map expr_vars args
  | Ast.E_arrow (ks, vs) -> List.concat_map expr_vars (ks @ vs)
  | Ast.E_int _ | Ast.E_float _ | Ast.E_string _ | Ast.E_bool _ | Ast.E_null | Ast.E_gacc _
  | Ast.E_gacc_prev _ -> []

let rec acc_targets (s : Ast.acc_stmt) =
  match s with
  | Ast.A_input (t, _) | Ast.A_assign (t, _) -> [ Ast.target_to_string t ]
  | Ast.A_local _ -> []
  | Ast.A_attr_assign (v, a, _) -> [ Printf.sprintf "%s.%s (attribute)" v a ]
  | Ast.A_if (_, th, el) -> List.concat_map acc_targets th @ List.concat_map acc_targets el

let endpoint_alias (ep : Ast.endpoint) =
  match ep.Ast.ep_alias with Some a -> a | None -> ep.Ast.ep_set

let explain_select buf (b : Ast.select_block) =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let pattern_aliases =
    List.concat_map
      (fun (c : Ast.conjunct) -> [ endpoint_alias c.Ast.c_src; endpoint_alias c.Ast.c_dst ])
      b.Ast.s_from
    |> List.sort_uniq compare
  in
  List.iteri
    (fun i (c : Ast.conjunct) ->
      add "  pattern %d: %s -(%s)- %s\n" (i + 1) (endpoint_alias c.Ast.c_src)
        (Darpe.Ast.to_string c.Ast.c_darpe)
        (endpoint_alias c.Ast.c_dst);
      add "    %s\n" (classify_darpe c.Ast.c_darpe))
    b.Ast.s_from;
  if List.length b.Ast.s_from > 1 then
    add "  join: %d conjuncts hash-joined on shared aliases {%s}\n" (List.length b.Ast.s_from)
      (String.concat ", " pattern_aliases);
  (match b.Ast.s_where with
   | None -> ()
   | Some w ->
     let parts = and_conjuncts w in
     let pushed, residual =
       List.partition
         (fun p ->
           match List.sort_uniq compare (List.filter (fun v -> List.mem v pattern_aliases) (expr_vars p)) with
           | [ _ ] -> true
           | _ -> false)
         parts
     in
     List.iter (fun p -> add "  where (pushed to seed filter): %s\n" (Ast.expr_to_string p)) pushed;
     List.iter (fun p -> add "  where (residual row filter):  %s\n" (Ast.expr_to_string p)) residual);
  let accum_targets = List.sort_uniq compare (List.concat_map acc_targets b.Ast.s_accum) in
  if accum_targets <> [] then
    add "  accum: one execution per binding row (multiplicity-weighted) -> {%s}\n"
      (String.concat ", " accum_targets);
  let post_targets = List.sort_uniq compare (List.concat_map acc_targets b.Ast.s_post_accum) in
  if post_targets <> [] then
    add "  post_accum: once per distinct vertex -> {%s}\n" (String.concat ", " post_targets);
  if b.Ast.s_group_by <> [] then
    add "  group by: %s (aggregates fold multiplicities; bag semantics)\n"
      (String.concat ", " (List.map Ast.expr_to_string b.Ast.s_group_by));
  (match b.Ast.s_order_by, b.Ast.s_limit with
   | [], None -> ()
   | keys, limit ->
     add "  order/limit: %s%s\n"
       (String.concat ", "
          (List.map (fun (e, d) -> Ast.expr_to_string e ^ if d then " DESC" else " ASC") keys))
       (match limit with Some l -> " limit " ^ Ast.expr_to_string l | None -> ""))

let rec explain_stmt ?(annot : Ast.select_block -> string list = fun _ -> []) buf depth
    (s : Ast.stmt) =
  let explain_stmt = explain_stmt ~annot in
  let indent = String.make (depth * 2) ' ' in
  let add fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (indent ^ str)) fmt in
  match s with
  | Ast.S_select (binding, b) ->
    add "SELECT block%s:\n" (match binding with Some x -> Printf.sprintf " (binds %s)" x | None -> "");
    explain_select buf b;
    List.iter (fun line -> Buffer.add_string buf ("  " ^ line ^ "\n")) (annot b)
  | Ast.S_while (c, limit, body) ->
    add "WHILE %s%s: accumulators carry state across iterations\n" (Ast.expr_to_string c)
      (match limit with Some l -> " (limit " ^ Ast.expr_to_string l ^ ")" | None -> "");
    List.iter (explain_stmt buf (depth + 1)) body
  | Ast.S_if (_, th, el) ->
    add "IF/ELSE:\n";
    List.iter (explain_stmt buf (depth + 1)) th;
    List.iter (explain_stmt buf (depth + 1)) el
  | Ast.S_foreach (x, e, body) ->
    add "FOREACH %s IN %s:\n" x (Ast.expr_to_string e);
    List.iter (explain_stmt buf (depth + 1)) body
  | Ast.S_acc_decl d ->
    add "declare %s: %s\n"
      (String.concat ", " (List.map (fun (g, n) -> (if g then "@@" else "@") ^ n) d.Ast.d_names))
      (Accum.Spec.to_string d.Ast.d_spec)
  | Ast.S_set_assign (x, _) -> add "vertex set %s\n" x
  | Ast.S_insert (ty, _, _) -> add "INSERT INTO %s\n" ty
  | Ast.S_gacc_assign _ | Ast.S_let _ | Ast.S_print _ | Ast.S_return _ -> ()

let explain_body ?annot buf stmts =
  let info = Analyze.check_block stmts in
  List.iter (explain_stmt ?annot buf 0) stmts;
  (match info.Analyze.errors with
   | [] -> ()
   | errs ->
     Buffer.add_string buf "analysis errors:\n";
     List.iter (fun e -> Buffer.add_string buf ("  ! " ^ e ^ "\n")) errs);
  List.iter (fun w -> Buffer.add_string buf ("warning: " ^ w ^ "\n")) info.Analyze.warnings;
  Buffer.add_string buf
    (if info.Analyze.tractable then
       "tractable class (Theorem 7.1): yes — polynomial-time evaluation under \
        all-shortest-paths semantics\n"
     else "tractable class (Theorem 7.1): NO — evaluation may be exponential\n")

(* The shape of the closure plan {!Catalog} installs for this source
   (docs/COMPILER.md).  Compiled without a schema, so segment-symbol
   resolution shows as deferred ([syms@invoke]) — the catalog's
   schema-aware install resolves them statically.  Analysis failures were
   already reported above; a plan can't exist for them. *)
let compiled_section buf mk_plan =
  match mk_plan () with
  | plan ->
    Buffer.add_string buf "compiled plan:\n";
    String.split_on_char '\n' (Compile.describe plan)
    |> List.iter (fun line -> Buffer.add_string buf ("  " ^ line ^ "\n"))
  | exception _ -> ()

let block ?annot stmts =
  let buf = Buffer.create 512 in
  explain_body ?annot buf stmts;
  compiled_section buf (fun () -> Compile.compile_block stmts);
  Buffer.contents buf

let query ?annot (q : Ast.query) =
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf) "query %s(%s)%s\n" q.Ast.q_name
    (String.concat ", " (List.map (fun (p : Ast.param) -> p.Ast.p_name) q.Ast.q_params))
    (match q.Ast.q_semantics with
     | Some sem -> Printf.sprintf " [semantics: %s]" (Pathsem.Semantics.to_string sem)
     | None -> " [semantics: all-shortest (default)]");
  explain_body ?annot buf q.Ast.q_body;
  compiled_section buf (fun () -> Compile.compile q);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: run the query under tracing, then join the recorded
   span tree back onto the static plan.                                *)

module T = Obs.Trace
module J = Obs.Json

(* Per-static-block aggregation of "select" spans (a block inside a WHILE
   executes once per iteration; they fold together keyed on the FROM
   signature the evaluator stamped on each span). *)
type block_stats = {
  mutable bs_execs : int;
  mutable bs_ms : float;
  mutable bs_rows : int;
  mutable bs_rows_where : int option;     (* Some = a residual WHERE ran *)
  mutable bs_out_vertices : int option;
  mutable bs_match_ms : float;
  mutable bs_engines : string list;       (* distinct engine names seen *)
  mutable bs_sources : int;
  mutable bs_bindings : int;
  mutable bs_mult : float;
  mutable bs_bfs_runs : int;
  mutable bs_bfs_hops : int;
  mutable bs_bfs_max_frontier : int;
  mutable bs_frontiers : int list option; (* per-hop sizes when exactly one BFS ran *)
  mutable bs_accum_ms : float;
  mutable bs_accum_rows : int;
  mutable bs_merges : int;
  mutable bs_assigns : int;
  mutable bs_commits : int;
  mutable bs_post_ms : float;
  mutable bs_post_merges : int;
  mutable bs_post_assigns : int;
}

let fresh_stats () =
  { bs_execs = 0; bs_ms = 0.0; bs_rows = 0; bs_rows_where = None; bs_out_vertices = None;
    bs_match_ms = 0.0; bs_engines = []; bs_sources = 0; bs_bindings = 0; bs_mult = 0.0;
    bs_bfs_runs = 0; bs_bfs_hops = 0; bs_bfs_max_frontier = 0; bs_frontiers = None;
    bs_accum_ms = 0.0; bs_accum_rows = 0; bs_merges = 0; bs_assigns = 0; bs_commits = 0;
    bs_post_ms = 0.0; bs_post_merges = 0; bs_post_assigns = 0 }

let attr (sp : T.span) name = List.assoc_opt name sp.T.sp_attrs
let attr_int sp name = match attr sp name with Some (J.Int n) -> Some n | _ -> None
let attr_int0 sp name = Option.value (attr_int sp name) ~default:0
let attr_str sp name = match attr sp name with Some (J.Str s) -> Some s | _ -> None
let attr_float0 sp name =
  match attr sp name with Some (J.Float f) -> f | Some (J.Int n) -> float_of_int n | _ -> 0.0

let children_named sp name =
  List.filter (fun (c : T.span) -> c.T.sp_name = name) (List.rev sp.T.sp_children)

let rec descendants_named (sp : T.span) name =
  List.concat_map
    (fun (c : T.span) ->
      (if c.T.sp_name = name then [ c ] else []) @ descendants_named c name)
    (List.rev sp.T.sp_children)

let fold_select_span stats (sp : T.span) =
  stats.bs_execs <- stats.bs_execs + 1;
  stats.bs_ms <- stats.bs_ms +. sp.T.sp_elapsed_ms;
  stats.bs_rows <- stats.bs_rows + attr_int0 sp "rows";
  (match attr_int sp "rows_after_where" with
   | Some n ->
     stats.bs_rows_where <-
       Some (n + Option.value stats.bs_rows_where ~default:0)
   | None -> ());
  (match attr_int sp "out_vertices" with
   | Some n -> stats.bs_out_vertices <- Some (n + Option.value stats.bs_out_vertices ~default:0)
   | None -> ());
  List.iter
    (fun m ->
      stats.bs_match_ms <- stats.bs_match_ms +. m.T.sp_elapsed_ms;
      List.iter
        (fun pm ->
          (match attr_str pm "engine" with
           | Some e when not (List.mem e stats.bs_engines) -> stats.bs_engines <- e :: stats.bs_engines
           | _ -> ());
          stats.bs_sources <- stats.bs_sources + attr_int0 pm "sources";
          stats.bs_bindings <- stats.bs_bindings + attr_int0 pm "bindings";
          stats.bs_mult <- stats.bs_mult +. attr_float0 pm "multiplicity_total")
        (descendants_named m "path_match");
      List.iter
        (fun bfs ->
          stats.bs_bfs_runs <- stats.bs_bfs_runs + 1;
          stats.bs_bfs_hops <- stats.bs_bfs_hops + attr_int0 bfs "hops";
          let fronts =
            match attr bfs "frontiers" with
            | Some (J.List l) -> List.filter_map J.to_int_opt l
            | _ -> []
          in
          List.iter
            (fun w -> if w > stats.bs_bfs_max_frontier then stats.bs_bfs_max_frontier <- w)
            fronts;
          stats.bs_frontiers <-
            (if stats.bs_bfs_runs = 1 then Some fronts else None))
        (descendants_named m "bfs"))
    (children_named sp "match");
  List.iter
    (fun a ->
      stats.bs_accum_ms <- stats.bs_accum_ms +. a.T.sp_elapsed_ms;
      stats.bs_accum_rows <- stats.bs_accum_rows + attr_int0 a "rows";
      stats.bs_merges <- stats.bs_merges + attr_int0 a "merge_ops";
      stats.bs_assigns <- stats.bs_assigns + attr_int0 a "assign_ops";
      stats.bs_commits <- stats.bs_commits + attr_int0 a "commits")
    (children_named sp "accum");
  List.iter
    (fun p ->
      stats.bs_post_ms <- stats.bs_post_ms +. p.T.sp_elapsed_ms;
      stats.bs_post_merges <- stats.bs_post_merges + attr_int0 p "merge_ops";
      stats.bs_post_assigns <- stats.bs_post_assigns + attr_int0 p "assign_ops";
      stats.bs_commits <- stats.bs_commits + attr_int0 p "commits")
    (children_named sp "post_accum")

let collect_block_stats roots =
  let index : (string, block_stats) Hashtbl.t = Hashtbl.create 8 in
  let rec walk (sp : T.span) =
    (if sp.T.sp_name = "select" then
       match attr_str sp "block" with
       | Some key ->
         let stats =
           match Hashtbl.find_opt index key with
           | Some s -> s
           | None ->
             let s = fresh_stats () in
             Hashtbl.replace index key s;
             s
         in
         fold_select_span stats sp
       | None -> ());
    List.iter walk (List.rev sp.T.sp_children)
  in
  List.iter walk roots;
  index

let fmt_ms ms =
  if ms < 1.0 then Printf.sprintf "%.3fms" ms
  else if ms < 1000.0 then Printf.sprintf "%.2fms" ms
  else Printf.sprintf "%.2fs" (ms /. 1000.0)

(* Path-multiplicity totals can exceed the float-exact integer range on the
   exponential fixtures; render compactly. *)
let fmt_mult m =
  if Float.is_integer m && Float.abs m < 1e15 then Printf.sprintf "%.0f" m
  else Printf.sprintf "%.3g" m

let render_block_stats ~timings stats =
  let time label ms = if timings then [ Printf.sprintf "%s %s" label (fmt_ms ms) ] else [] in
  let lines = ref [] in
  let push fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  push "analyze: %d execution%s%s" stats.bs_execs
    (if stats.bs_execs = 1 then "" else "s")
    (if timings then ", " ^ fmt_ms stats.bs_ms ^ " total" else "");
  let where_part =
    match stats.bs_rows_where with
    | Some n -> Printf.sprintf " (%d after residual WHERE)" n
    | None -> ""
  in
  push "  match: %d binding row%s%s%s" stats.bs_rows
    (if stats.bs_rows = 1 then "" else "s")
    where_part
    (String.concat "" (List.map (fun s -> ", " ^ s) (time "" stats.bs_match_ms |> List.map String.trim)));
  if stats.bs_engines <> [] then
    push "  paths: engine %s, %d source%s -> %d binding%s, path multiplicity %s"
      (String.concat "+" (List.rev stats.bs_engines))
      stats.bs_sources
      (if stats.bs_sources = 1 then "" else "s")
      stats.bs_bindings
      (if stats.bs_bindings = 1 then "" else "s")
      (fmt_mult stats.bs_mult);
  if stats.bs_bfs_runs > 0 then begin
    (match stats.bs_frontiers with
     | Some fronts when fronts <> [] ->
       push "  bfs: %d hop%s, frontier sizes [%s] (product states per hop)" stats.bs_bfs_hops
         (if stats.bs_bfs_hops = 1 then "" else "s")
         (String.concat ", " (List.map string_of_int fronts))
     | _ ->
       push "  bfs: %d run%s, %d hops total, max frontier %d" stats.bs_bfs_runs
         (if stats.bs_bfs_runs = 1 then "" else "s")
         stats.bs_bfs_hops stats.bs_bfs_max_frontier)
  end;
  if stats.bs_commits > 0 || stats.bs_merges > 0 || stats.bs_assigns > 0 then
    push "  accum: %d acc-execution%s, %d merge op%s, %d assign%s%s" stats.bs_accum_rows
      (if stats.bs_accum_rows = 1 then "" else "s")
      stats.bs_merges
      (if stats.bs_merges = 1 then "" else "s")
      stats.bs_assigns
      (if stats.bs_assigns = 1 then "" else "s")
      (String.concat ""
         (List.map (fun s -> ", " ^ s) (time "" stats.bs_accum_ms |> List.map String.trim)));
  if stats.bs_post_merges > 0 || stats.bs_post_assigns > 0 || stats.bs_post_ms > 0.0 then
    push "  post_accum: %d merge op%s, %d assign%s%s" stats.bs_post_merges
      (if stats.bs_post_merges = 1 then "" else "s")
      stats.bs_post_assigns
      (if stats.bs_post_assigns = 1 then "" else "s")
      (String.concat ""
         (List.map (fun s -> ", " ^ s) (time "" stats.bs_post_ms |> List.map String.trim)));
  (match stats.bs_out_vertices with
   | Some n -> push "  output: %d vertex set member%s" n (if n = 1 then "" else "s")
   | None -> ());
  List.rev !lines

(* Global (whole-run) telemetry footer, from the metrics registry. *)
let render_summary ~timings metrics =
  let counter name =
    match J.member "counters" metrics with
    | Some c -> (match J.member name c with Some (J.Int n) -> n | _ -> 0)
    | None -> 0
  in
  let lines = ref [] in
  let push fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  push "== execution telemetry ==";
  let selects = counter "eval.select_blocks" in
  (if timings then
     match J.member "histograms" metrics with
     | Some h ->
       (match J.member "eval.select_ms" h with
        | Some hist ->
          (match J.member "sum" hist |> Option.map J.to_float_opt |> Option.join with
           | Some sum -> push "select blocks: %d (%s total)" selects (fmt_ms sum)
           | None -> push "select blocks: %d" selects)
        | None -> push "select blocks: %d" selects)
     | None -> push "select blocks: %d" selects
   else push "select blocks: %d" selects);
  push "accumulator store: %d merge ops, %d assigns, %d commits"
    (counter "accum.merge_ops") (counter "accum.assign_ops") (counter "accum.commits");
  let bfs_sources = counter "paths.count.sources" in
  if bfs_sources > 0 then
    push "counting engine: %d BFS run%s, %d hops, %d product-state expansions" bfs_sources
      (if bfs_sources = 1 then "" else "s")
      (counter "paths.count.hops") (counter "paths.count.product_states");
  let enum = counter "paths.enum.paths" in
  if enum > 0 then push "enumeration engine: %d paths materialized" enum;
  List.rev !lines

type analysis = {
  an_report : string;
  an_result : Eval.result;
  an_trace : J.t;
  an_metrics : J.t;
}

let analyze_parsed graph ?semantics ?(params = []) ?(timings = true) parsed =
  let metrics_were_on = Obs.Metrics.enabled () in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  T.start ();
  let result =
    match
      Fun.protect
        ~finally:(fun () -> Obs.Metrics.set_enabled metrics_were_on)
        (fun () ->
          match parsed with
          | `Query q -> Eval.run_query graph ?semantics ~params q
          | `Block stmts -> Eval.run_block graph ?semantics ~params stmts)
    with
    | r -> r
    | exception e ->
      (* Leave no live trace behind (a REPL keeps the process alive). *)
      ignore (T.stop ());
      raise e
  in
  let trace_doc = T.stop () in
  let roots = T.roots () in
  let metrics = Obs.Metrics.dump () in
  let index = collect_block_stats roots in
  let annot b =
    match Hashtbl.find_opt index (Ast.select_signature b) with
    | Some stats -> render_block_stats ~timings stats
    | None -> [ "analyze: not executed" ]
  in
  let plan = match parsed with `Query q -> query ~annot q | `Block stmts -> block ~annot stmts in
  let report =
    plan ^ "\n" ^ String.concat "\n" (render_summary ~timings metrics) ^ "\n"
  in
  { an_report = report; an_result = result; an_trace = trace_doc; an_metrics = metrics }

let analyze_source graph ?semantics ?params ?timings src =
  let parsed =
    match Parser.parse_query src with
    | q -> `Query q
    | exception Parser.Error _ -> `Block (Parser.parse_block src)
  in
  analyze_parsed graph ?semantics ?params ?timings parsed

(* ------------------------------------------------------------------ *)
(* EXPLAIN / EXPLAIN ANALYZE surface syntax: a leading keyword stripped
   before the regular parser runs (LANGUAGE.md "Inspecting plans").     *)

let strip_explain src =
  let n = String.length src in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let is_word c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let rec skip i = if i < n && is_space src.[i] then skip (i + 1) else i in
  let word_end i =
    let rec go j = if j < n && is_word src.[j] then go (j + 1) else j in
    go i
  in
  let i0 = skip 0 in
  let i1 = word_end i0 in
  let kw1 = String.lowercase_ascii (String.sub src i0 (i1 - i0)) in
  if kw1 <> "explain" then (`Plain, src)
  else begin
    let j0 = skip i1 in
    let j1 = word_end j0 in
    let kw2 = String.lowercase_ascii (String.sub src j0 (j1 - j0)) in
    if kw2 = "analyze" then (`Analyze, String.sub src j1 (n - j1))
    else (`Explain, String.sub src i1 (n - i1))
  end
