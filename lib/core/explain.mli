(** Query plans, explained.

    Renders how the evaluator will treat a query: per-pattern DARPE
    classification (single step → adjacency scan; bounded/unbounded Kleene →
    graph×DFA product under the counting or enumeration engine), which WHERE
    conjuncts push into the pattern match as seed filters, which accumulators
    each clause touches, and the tractable-class verdict of Theorem 7.1 —
    the reasoning §7 walks through, per query. *)

val query : ?annot:(Ast.select_block -> string list) -> Ast.query -> string
val block : ?annot:(Ast.select_block -> string list) -> Ast.stmt list -> string
(** Raises nothing; analysis errors are embedded in the report.  [annot]
    supplies extra per-SELECT-block lines (EXPLAIN ANALYZE hangs runtime
    stats off the static plan through it). *)

(** {1 EXPLAIN ANALYZE} *)

type analysis = {
  an_report : string;       (** annotated plan + execution telemetry *)
  an_result : Eval.result;  (** the real execution result *)
  an_trace : Obs.Json.t;    (** span-tree document (trace schema) *)
  an_metrics : Obs.Json.t;  (** {!Obs.Metrics.dump} snapshot of the run *)
}

val analyze_source :
  Pgraph.Graph.t -> ?semantics:Pathsem.Semantics.t ->
  ?params:(string * Pgraph.Value.t) list -> ?timings:bool -> string -> analysis
(** Parses [src] like {!Eval.run_source}, executes it with metrics and
    tracing enabled, and joins the recorded spans back onto the static plan:
    each SELECT block is annotated with executions, binding-table sizes,
    path-engine stats (sources, bindings, multiplicity totals, BFS frontier
    sizes per hop), and accumulator merge/assign counts, followed by a
    whole-run telemetry footer.  [~timings:false] omits wall-clock values so
    the report is deterministic (golden tests).  Metrics are reset on entry;
    the previous enabled/disabled state of the registry is restored on exit.
    Raises whatever {!Eval.run_source} raises. *)

val strip_explain : string -> [ `Plain | `Explain | `Analyze ] * string
(** Recognizes a leading [EXPLAIN \[ANALYZE\]] keyword (case-insensitive)
    and returns the mode together with the remaining source text. *)
