module V = Pgraph.Value
module B = Pgraph.Bignat
module G = Pgraph.Graph
module Sem = Pathsem.Semantics

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Runtime_error msg)) fmt

type rt_value =
  | R_scalar of V.t
  | R_vset of int array
  | R_table of Table.t

type result = {
  r_tables : (string * Table.t) list;
  r_printed : string;
  r_return : rt_value option;
  r_vsets : (string * int array) list;
}

(* ------------------------------------------------------------------ *)
(* Execution context                                                   *)

type ctx = {
  graph : G.t;
  store : Accum.Store.t;
  semantics : Sem.t;
  vars : (string, rt_value) Hashtbl.t;
  mutable tables : (string * Table.t) list;  (* reverse creation order *)
  print_buf : Buffer.t;
  mutable returned : rt_value option;
  primed : string list;  (* accumulator families used with ' *)
  mutable partition : Shard.Partition.t option;
      (* when set (and holding > 1 shard), path matching runs as BSP
         supersteps over the partition and shard-safe compiled ACCUM
         phases split into per-shard partials — results are identical
         either way (the shards=1 ≡ shards=N differential contract) *)
}

exception Returned

(* Overlay: assignments made earlier in the same acc-execution are visible
   to later statements of that execution (sequential within, snapshot
   across — see DESIGN.md on the PageRank POST_ACCUM idiom). *)
type overlay = (Accum.Store.target, V.t) Hashtbl.t

let overlay_create () : overlay = Hashtbl.create 8

(* ------------------------------------------------------------------ *)
(* Binding tables                                                      *)

type row = {
  verts : int array;          (* vertex id per vertex-alias slot; -1 unset *)
  edges : int array;          (* edge id per edge-alias slot; -1 unset *)
  mult : B.t;
}

type binding_table = {
  v_aliases : string array;
  e_aliases : string array;
  mutable rows : row list;
}

let alias_slot aliases name =
  let n = Array.length aliases in
  let rec go i = if i = n then -1 else if aliases.(i) = name then i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Value environment and expression evaluation                         *)

(* [lookup] resolves row aliases and ACCUM locals; falls back to ctx vars. *)
type env = {
  e_ctx : ctx;
  e_lookup : string -> V.t option;
  e_overlay : overlay option;
  e_agg : (string -> Ast.expr list -> V.t) option;
      (* aggregate-call hook, set only when evaluating GROUP BY groups *)
}

let ctx_var_value ctx name =
  match Hashtbl.find_opt ctx.vars name with
  | Some (R_scalar v) -> Some v
  | Some (R_vset vs) -> Some (V.Vlist (Array.to_list (Array.map (fun v -> V.Vertex v) vs)))
  | Some (R_table t) ->
    Some (V.Vlist (List.map (fun r -> V.Vtuple r) t.Table.rows))
  | None -> None

let read_acc env target =
  (match env.e_overlay with
   | Some o -> Hashtbl.find_opt o target
   | None -> None)
  |> function
  | Some v -> v
  | None -> Accum.Store.read env.e_ctx.store target

let resolve_vertex env alias =
  match env.e_lookup alias with
  | Some (V.Vertex v) -> v
  | Some other -> error "%s is bound to %s, not a vertex" alias (V.to_string other)
  | None ->
    (match ctx_var_value env.e_ctx alias with
     | Some (V.Vertex v) -> v
     | _ -> error "unbound vertex variable %s" alias)

(* SQL aggregate functions, active inside GROUP BY evaluation. *)
let is_aggregate_name name =
  match String.lowercase_ascii name with
  | "count" | "sum" | "avg" | "min" | "max" -> true
  | _ -> false

let builtin_call name args =
  let one () = match args with [ v ] -> v | _ -> error "%s expects one argument" name in
  let two () =
    match args with [ a; b ] -> (a, b) | _ -> error "%s expects two arguments" name
  in
  match String.lowercase_ascii name with
  | "log" -> V.Float (Float.log (V.to_float (one ())))
  | "log2" -> V.Float (Float.log2 (V.to_float (one ())))
  | "exp" -> V.Float (Float.exp (V.to_float (one ())))
  | "sqrt" -> V.Float (Float.sqrt (V.to_float (one ())))
  | "abs" ->
    (match one () with
     | V.Int n -> V.Int (abs n)
     | v -> V.Float (Float.abs (V.to_float v)))
  | "floor" -> V.Float (Float.floor (V.to_float (one ())))
  | "ceil" -> V.Float (Float.ceil (V.to_float (one ())))
  | "pow" ->
    let a, b = two () in
    V.Float (Float.pow (V.to_float a) (V.to_float b))
  | "min" ->
    let a, b = two () in
    if V.compare a b <= 0 then a else b
  | "max" ->
    let a, b = two () in
    if V.compare a b >= 0 then a else b
  | "year" -> V.Int (V.year_of_datetime (one ()))
  | "month" -> V.Int (V.month_of_datetime (one ()))
  | "datetime" ->
    (match args with
     | [ y; m; d ] -> V.datetime_of_ymd (V.to_int y) (V.to_int m) (V.to_int d)
     | _ -> error "datetime expects (year, month, day)")
  | "id" ->
    (* Internal id of a vertex or edge — lets queries seed per-vertex
       labels (WCC, label propagation) without a dedicated attribute. *)
    (match one () with
     | V.Vertex v -> V.Int v
     | V.Edge e -> V.Int e
     | _ -> error "id expects a vertex or edge")
  | "str" | "to_string" -> V.Str (V.to_string (one ()))
  | "lower" -> V.Str (String.lowercase_ascii (V.to_string_exn (one ())))
  | "upper" -> V.Str (String.uppercase_ascii (V.to_string_exn (one ())))
  | "trim" -> V.Str (String.trim (V.to_string_exn (one ())))
  | "length" -> V.Int (String.length (V.to_string_exn (one ())))
  | "concat" ->
    V.Str (String.concat "" (List.map V.to_string args))
  | "substr" ->
    (match args with
     | [ s; start; len ] ->
       let s = V.to_string_exn s and start = V.to_int start and len = V.to_int len in
       let n = String.length s in
       let start = max 0 (min start n) in
       let len = max 0 (min len (n - start)) in
       V.Str (String.sub s start len)
     | _ -> error "substr expects (string, start, length)")
  | "starts_with" ->
    let s, p = two () in
    let s = V.to_string_exn s and p = V.to_string_exn p in
    V.Bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | "contains_str" ->
    let s, p = two () in
    let s = V.to_string_exn s and p = V.to_string_exn p in
    let n = String.length s and m = String.length p in
    let rec scan i = i + m <= n && (String.sub s i m = p || scan (i + 1)) in
    V.Bool (m = 0 || scan 0)
  | "to_int" ->
    (match one () with
     | V.Int n -> V.Int n
     | V.Float f -> V.Int (int_of_float f)
     | V.Str s -> (try V.Int (int_of_string s) with Failure _ -> error "to_int: bad string")
     | _ -> error "to_int: unsupported value")
  | "to_float" -> V.Float (V.to_float (one ()))
  | "size" | "count" ->
    (match one () with
     | V.Vlist l -> V.Int (List.length l)
     | V.Str s -> V.Int (String.length s)
     | _ -> error "%s expects a collection" name)
  | _ -> error "unknown function %s" name

let rec eval_expr env (e : Ast.expr) : V.t =
  match e with
  | Ast.E_int n -> V.Int n
  | Ast.E_float f -> V.Float f
  | Ast.E_string s -> V.Str s
  | Ast.E_bool b -> V.Bool b
  | Ast.E_null -> V.Null
  | Ast.E_var name ->
    (match env.e_lookup name with
     | Some v -> v
     | None ->
       (match ctx_var_value env.e_ctx name with
        | Some v -> v
        | None -> error "unbound variable %s" name))
  | Ast.E_attr (base, attr) ->
    (match env.e_lookup base, ctx_var_value env.e_ctx base with
     | Some (V.Vertex v), _ | None, Some (V.Vertex v) -> G.vertex_attr env.e_ctx.graph v attr
     | Some (V.Edge e), _ | None, Some (V.Edge e) -> G.edge_attr env.e_ctx.graph e attr
     | Some other, _ -> error "%s.%s: %s is not a vertex or edge" base attr (V.to_string other)
     | None, _ -> error "unbound variable %s" base)
  | Ast.E_vacc (base, name) ->
    let v = resolve_vertex env base in
    read_acc env (Accum.Store.Vertex_acc (name, v))
  | Ast.E_vacc_prev (base, name) ->
    let v = resolve_vertex env base in
    Accum.Store.read_prev env.e_ctx.store (Accum.Store.Vertex_acc (name, v))
  | Ast.E_gacc name -> read_acc env (Accum.Store.Global name)
  | Ast.E_gacc_prev name -> Accum.Store.read_prev env.e_ctx.store (Accum.Store.Global name)
  | Ast.E_binop (Ast.And, a, b) -> V.Bool (V.to_bool (eval_expr env a) && V.to_bool (eval_expr env b))
  | Ast.E_binop (Ast.Or, a, b) -> V.Bool (V.to_bool (eval_expr env a) || V.to_bool (eval_expr env b))
  | Ast.E_binop (op, a, b) ->
    let x = eval_expr env a and y = eval_expr env b in
    (match op with
     | Ast.Add -> V.add x y
     | Ast.Sub -> V.sub x y
     | Ast.Mul -> V.mul x y
     | Ast.Div -> V.div x y
     | Ast.Mod -> V.modulo x y
     | Ast.Eq -> V.Bool (V.equal x y)
     | Ast.Neq -> V.Bool (not (V.equal x y))
     | Ast.Lt -> V.Bool (V.compare x y < 0)
     | Ast.Le -> V.Bool (V.compare x y <= 0)
     | Ast.Gt -> V.Bool (V.compare x y > 0)
     | Ast.Ge -> V.Bool (V.compare x y >= 0)
     | Ast.And | Ast.Or -> assert false)
  | Ast.E_unop (Ast.Neg, a) -> V.neg (eval_expr env a)
  | Ast.E_unop (Ast.Not, a) -> V.Bool (not (V.to_bool (eval_expr env a)))
  | Ast.E_call (name, args) ->
    (match env.e_agg with
     | Some hook when is_aggregate_name name && List.length args = 1 -> hook name args
     | _ -> builtin_call name (List.map (eval_expr env) args))
  | Ast.E_method (base, meth, args) -> eval_method env base meth (List.map (eval_expr env) args)
  | Ast.E_tuple es -> V.Vtuple (Array.of_list (List.map (eval_expr env) es))
  | Ast.E_arrow (ks, vs) ->
    let keys = Array.of_list (List.map (eval_expr env) ks) in
    let vals = Array.of_list (List.map (eval_expr env) vs) in
    (* A single-key, single-value arrow is a MapAccum input; anything wider
       is a GroupByAccum input. *)
    if Array.length keys = 1 && Array.length vals = 1 then V.Vtuple [| keys.(0); vals.(0) |]
    else V.Vtuple [| V.Vtuple keys; V.Vtuple vals |]

and eval_method env base meth args =
  match meth, base with
  | ("outdegree" | "outDegree"), _ ->
    let v =
      match base with
      | Ast.E_var alias -> resolve_vertex env alias
      | _ -> error "outdegree() requires a vertex variable"
    in
    (match args with
     | [] -> V.Int (G.out_degree env.e_ctx.graph v)
     | [ V.Str ty ] ->
       (match Pgraph.Schema.find_edge_type (G.schema env.e_ctx.graph) ty with
        | Some et ->
          let n = ref 0 in
          G.iter_adjacent env.e_ctx.graph v (fun h ->
              if (h.G.h_rel = G.Out || h.G.h_rel = G.Und)
                 && G.edge_type_id env.e_ctx.graph h.G.h_edge = et.Pgraph.Schema.et_id
              then incr n);
          V.Int !n
        | None -> error "outdegree: unknown edge type %s" ty)
     | _ -> error "outdegree expects no argument or an edge type name")
  | ("indegree" | "inDegree"), Ast.E_var alias ->
    V.Int (G.in_degree env.e_ctx.graph (resolve_vertex env alias))
  | "size", _ ->
    (match eval_expr env base with
     | V.Vlist l -> V.Int (List.length l)
     | v -> error "size(): %s is not a collection" (V.to_string v))
  | "get", _ ->
    (* m.get(k): MapAccum lookup on a read map value. *)
    (match eval_expr env base, args with
     | V.Vlist pairs, [ k ] ->
       let rec find = function
         | [] -> V.Null
         | V.Vtuple [| key; value |] :: rest -> if V.equal key k then value else find rest
         | _ :: rest -> find rest
       in
       find pairs
     | _ -> error "get() expects a map value and one key")
  | "contains", _ ->
    (match eval_expr env base, args with
     | V.Vlist l, [ x ] -> V.Bool (List.exists (V.equal x) l)
     | _ -> error "contains() expects a collection and one value")
  | "type", Ast.E_var alias ->
    let v = resolve_vertex env alias in
    V.Str (G.vertex_type env.e_ctx.graph v).Pgraph.Schema.vt_name
  | _ -> error "unknown method %s" meth

let plain_env ctx =
  { e_ctx = ctx; e_lookup = (fun _ -> None); e_overlay = None; e_agg = None }

let env_with ctx bindings =
  { e_ctx = ctx; e_lookup = (fun n -> List.assoc_opt n bindings); e_overlay = None; e_agg = None }

(* ------------------------------------------------------------------ *)
(* FROM clause: building the compressed binding table                  *)

let resolve_endpoint_set ctx name : int array option =
  (* Returns the concrete seed set, or None when the name denotes a vertex
     type used purely as a filter. *)
  match Hashtbl.find_opt ctx.vars name with
  | Some (R_vset vs) -> Some vs
  | Some (R_scalar (V.Vertex v)) -> Some [| v |]
  | Some _ -> error "%s is not a vertex set" name
  | None -> None

let type_filter ctx name : int -> bool =
  if name = "_" || name = "ANY" then fun _ -> true
  else
    match Pgraph.Schema.find_vertex_type (G.schema ctx.graph) name with
    | Some vt -> fun v -> G.vertex_type_id ctx.graph v = vt.Pgraph.Schema.vt_id
    | None -> error "unknown vertex type or set %s" name

let endpoint_seed ctx (ep : Ast.endpoint) : int array =
  match resolve_endpoint_set ctx ep.Ast.ep_set with
  | Some vs -> vs
  | None ->
    if ep.Ast.ep_set = "_" || ep.Ast.ep_set = "ANY" then
      Array.init (G.n_vertices ctx.graph) (fun i -> i)
    else
      (match Pgraph.Schema.find_vertex_type (G.schema ctx.graph) ep.Ast.ep_set with
       | Some vt -> G.vertices_of_type ctx.graph vt.Pgraph.Schema.vt_id
       | None -> error "unknown vertex type or set %s" ep.Ast.ep_set)

let endpoint_pred ctx (ep : Ast.endpoint) : int -> bool =
  match resolve_endpoint_set ctx ep.Ast.ep_set with
  | Some vs ->
    let tbl = Hashtbl.create (Array.length vs) in
    Array.iter (fun v -> Hashtbl.replace tbl v ()) vs;
    fun v -> Hashtbl.mem tbl v
  | None -> type_filter ctx ep.Ast.ep_set

let endpoint_alias (ep : Ast.endpoint) =
  match ep.Ast.ep_alias with
  | Some a -> a
  | None -> ep.Ast.ep_set

(* "Customer:c" where [c] is a vertex-valued parameter or prior binding pins
   the alias to that single vertex (paper Fig. 3 seeds the pattern with the
   query's customer parameter this way). *)
let alias_constraint ctx alias =
  match Hashtbl.find_opt ctx.vars alias with
  | Some (R_scalar (V.Vertex v)) -> Some v
  | _ -> None

(* Single-step DARPE: scan the frozen CSR index's (etype, rel) segment
   slices directly, binding the edge variable when present — a typed,
   direction-adorned step touches only its matching contiguous slices
   instead of predicate-filtering the whole adjacency list.  Returns
   (src, dst, edge) triples. *)
let single_step_pairs ctx (sources : int array) (ty : string option) (adir : Darpe.Ast.adir)
    ~(dst_ok : int -> bool) : (int * int * int) list =
  let csr = Pgraph.Csr.of_graph ctx.graph in
  let etype =
    match ty with
    | None -> None
    | Some name ->
      (match Pgraph.Schema.find_edge_type (G.schema ctx.graph) name with
       | Some et -> Some et.Pgraph.Schema.et_id
       | None -> error "unknown edge type %s" name)
  in
  let rel_ok (rel : G.dir_rel) =
    match adir, rel with
    | Darpe.Ast.Fwd, G.Out | Darpe.Ast.Rev, G.In | Darpe.Ast.Undir, G.Und | Darpe.Ast.Any, _ ->
      true
    | (Darpe.Ast.Fwd | Darpe.Ast.Rev | Darpe.Ast.Undir), _ -> false
  in
  let out = ref [] in
  let scan src lo hi =
    for j = lo to hi - 1 do
      let dst = csr.Pgraph.Csr.nbr.(j) in
      if dst_ok dst then out := (src, dst, csr.Pgraph.Csr.edg.(j)) :: !out
    done
  in
  Array.iter
    (fun src ->
      match etype with
      | Some t ->
        (* Known edge type: binary-search the matching segment per allowed
           relation. *)
        List.iter
          (fun rel ->
            if rel_ok rel then
              match Pgraph.Csr.find_segment csr src ~sym:(Pgraph.Csr.sym ~etype:t ~rel) with
              | Some (lo, hi) -> scan src lo hi
              | None -> ())
          [ G.Out; G.In; G.Und ]
      | None ->
        Pgraph.Csr.iter_segments csr src (fun ~sym ~lo ~hi ->
            if rel_ok (Pgraph.Csr.rel_of_code (sym mod 3)) then scan src lo hi))
    sources;
  !out

let distinct_ints (a : int array) =
  let tbl = Hashtbl.create (Array.length a) in
  let out = ref [] in
  Array.iter
    (fun v ->
      if not (Hashtbl.mem tbl v) then begin
        Hashtbl.add tbl v ();
        out := v :: !out
      end)
    a;
  Array.of_list (List.rev !out)

(* Evaluate one conjunct against the rows built so far.  [alias_pred] is the
   pushed-down single-alias WHERE filter (identity when none applies). *)
let eval_conjunct ctx ~(alias_pred : string -> int -> bool) (bt : binding_table)
    (c : Ast.conjunct) =
  let src_alias = endpoint_alias c.Ast.c_src and dst_alias = endpoint_alias c.Ast.c_dst in
  let src_slot = alias_slot bt.v_aliases src_alias in
  let dst_slot = alias_slot bt.v_aliases dst_alias in
  let edge_slot =
    match c.Ast.c_edge_alias with Some a -> alias_slot bt.e_aliases a | None -> -1
  in
  let src_bound = bt.rows <> [] && List.exists (fun r -> r.verts.(src_slot) >= 0) bt.rows in
  let dst_bound = bt.rows <> [] && List.exists (fun r -> r.verts.(dst_slot) >= 0) bt.rows in
  let sources =
    if src_bound then
      distinct_ints (Array.of_list (List.map (fun r -> r.verts.(src_slot)) bt.rows))
    else endpoint_seed ctx c.Ast.c_src
  in
  let src_pred =
    let base = endpoint_pred ctx c.Ast.c_src in
    let pushed = alias_pred src_alias in
    let pinned = alias_constraint ctx src_alias in
    fun v -> base v && pushed v && (match pinned with None -> true | Some p -> v = p)
  in
  let sources = Array.of_list (List.filter src_pred (Array.to_list sources)) in
  let dst_pred =
    let base = endpoint_pred ctx c.Ast.c_dst in
    let pushed = alias_pred dst_alias in
    let pinned = alias_constraint ctx dst_alias in
    fun v -> base v && pushed v && (match pinned with None -> true | Some p -> v = p)
  in
  (* pairs : (src, dst, edge option, multiplicity) list *)
  let pairs =
    match c.Ast.c_darpe with
    | Darpe.Ast.Step (ty, adir) ->
      List.map
        (fun (s, d, e) -> (s, d, e, B.one))
        (single_step_pairs ctx sources ty adir ~dst_ok:dst_pred)
    | darpe ->
      List.map
        (fun (b : Pathsem.Engine.binding) ->
          (b.Pathsem.Engine.b_src, b.Pathsem.Engine.b_dst, -1, b.Pathsem.Engine.b_mult))
        (Pathsem.Engine.match_pairs ?shards:ctx.partition ctx.graph darpe ctx.semantics
           ~sources ~dst_ok:dst_pred)
  in
  if bt.rows = [] then
    bt.rows <-
      List.map
        (fun (s, d, e, mu) ->
          let verts = Array.make (Array.length bt.v_aliases) (-1) in
          let edges = Array.make (Array.length bt.e_aliases) (-1) in
          verts.(src_slot) <- s;
          verts.(dst_slot) <- d;
          if edge_slot >= 0 then edges.(edge_slot) <- e;
          { verts; edges; mult = mu })
        pairs
  else begin
    (* Hash-join on the already-bound endpoints. *)
    let by_src = Hashtbl.create 64 in
    List.iter
      (fun ((s, _, _, _) as p) ->
        Hashtbl.replace by_src s (p :: (try Hashtbl.find by_src s with Not_found -> [])))
      pairs;
    let extend (r : row) (s, d, e, mu) =
      if (r.verts.(src_slot) >= 0 && r.verts.(src_slot) <> s)
         || (r.verts.(dst_slot) >= 0 && r.verts.(dst_slot) <> d)
      then None
      else begin
        let verts = Array.copy r.verts and edges = Array.copy r.edges in
        verts.(src_slot) <- s;
        verts.(dst_slot) <- d;
        if edge_slot >= 0 then edges.(edge_slot) <- e;
        Some { verts; edges; mult = B.mul r.mult mu }
      end
    in
    let rows =
      List.concat_map
        (fun r ->
          let candidates =
            if src_bound && r.verts.(src_slot) >= 0 then
              (try Hashtbl.find by_src r.verts.(src_slot) with Not_found -> [])
            else pairs
          in
          List.filter_map (extend r) candidates)
        bt.rows
    in
    ignore dst_bound;
    bt.rows <- rows
  end;
  (* Governor checkpoint: the joined table is the unbounded product in a
     SELECT — charge its size and enforce the row ceiling.  Guarded so
     ungoverned runs never pay the List.length. *)
  if Interrupt.governed () then begin
    let n = List.length bt.rows in
    Interrupt.check_rows n;
    Interrupt.tick_n n
  end

let collect_aliases (from : Ast.conjunct list) =
  let v_aliases = ref [] and e_aliases = ref [] in
  let add l a = if not (List.mem a !l) then l := a :: !l in
  List.iter
    (fun (c : Ast.conjunct) ->
      add v_aliases (endpoint_alias c.Ast.c_src);
      add v_aliases (endpoint_alias c.Ast.c_dst);
      match c.Ast.c_edge_alias with Some a -> add e_aliases a | None -> ())
    from;
  (Array.of_list (List.rev !v_aliases), Array.of_list (List.rev !e_aliases))

let build_binding_table ctx ~alias_pred (from : Ast.conjunct list) : binding_table =
  let v_aliases, e_aliases = collect_aliases from in
  let bt = { v_aliases; e_aliases; rows = [] } in
  (match from with
   | [] -> error "FROM clause needs at least one pattern"
   | first :: rest ->
     eval_conjunct ctx ~alias_pred bt first;
     List.iter (fun c -> if bt.rows <> [] then eval_conjunct ctx ~alias_pred bt c) rest);
  bt

(* WHERE decomposition: split a top-level AND tree into conjuncts; those
   touching exactly one vertex alias are pushed into the pattern match
   (evaluated per candidate vertex, before path counting), the rest stay as
   a residual row filter.  This mirrors the seed-set pre-filtering every
   graph engine performs and keeps the diamond benchmarks honest: Q_n
   matches from one source vertex, not from |V| of them. *)
let rec and_conjuncts (e : Ast.expr) =
  match e with
  | Ast.E_binop (Ast.And, a, b) -> and_conjuncts a @ and_conjuncts b
  | other -> [ other ]

let rec expr_vertex_aliases_only (aliases : string array) (e : Ast.expr) : string list option =
  (* Some [names] when the expression mentions pattern aliases only through
     the returned vertex aliases (no edge aliases); None = not pushable. *)
  let merge a b =
    match a, b with
    | Some x, Some y -> Some (x @ y)
    | _ -> None
  in
  match e with
  | Ast.E_var v | Ast.E_attr (v, _) | Ast.E_vacc (v, _) | Ast.E_vacc_prev (v, _) ->
    if alias_slot aliases v >= 0 then Some [ v ] else Some []
  | Ast.E_int _ | Ast.E_float _ | Ast.E_string _ | Ast.E_bool _ | Ast.E_null | Ast.E_gacc _
  | Ast.E_gacc_prev _ -> Some []
  | Ast.E_binop (_, a, b) ->
    merge (expr_vertex_aliases_only aliases a) (expr_vertex_aliases_only aliases b)
  | Ast.E_unop (_, a) -> expr_vertex_aliases_only aliases a
  | Ast.E_call (_, args) | Ast.E_tuple args ->
    List.fold_left (fun acc a -> merge acc (expr_vertex_aliases_only aliases a)) (Some []) args
  | Ast.E_method (base, _, args) ->
    List.fold_left
      (fun acc a -> merge acc (expr_vertex_aliases_only aliases a))
      (expr_vertex_aliases_only aliases base)
      args
  | Ast.E_arrow (ks, vs) ->
    List.fold_left
      (fun acc a -> merge acc (expr_vertex_aliases_only aliases a))
      (Some []) (ks @ vs)

let rec expr_aliases_of (e_aliases : string array) (e : Ast.expr) : string list =
  match e with
  | Ast.E_var v | Ast.E_attr (v, _) -> if alias_slot e_aliases v >= 0 then [ v ] else []
  | Ast.E_vacc _ | Ast.E_vacc_prev _ | Ast.E_int _ | Ast.E_float _ | Ast.E_string _
  | Ast.E_bool _ | Ast.E_null | Ast.E_gacc _ | Ast.E_gacc_prev _ -> []
  | Ast.E_binop (_, a, b) -> expr_aliases_of e_aliases a @ expr_aliases_of e_aliases b
  | Ast.E_unop (_, a) -> expr_aliases_of e_aliases a
  | Ast.E_call (_, args) | Ast.E_tuple args -> List.concat_map (expr_aliases_of e_aliases) args
  | Ast.E_method (base, _, args) ->
    expr_aliases_of e_aliases base @ List.concat_map (expr_aliases_of e_aliases) args
  | Ast.E_arrow (ks, vs) -> List.concat_map (expr_aliases_of e_aliases) (ks @ vs)

let split_where ctx (from : Ast.conjunct list) (where : Ast.expr option) =
  let v_aliases, e_aliases = collect_aliases from in
  match where with
  | None -> ((fun _ _ -> true), None)
  | Some cond ->
    let parts = and_conjuncts cond in
    let pushable, residual =
      List.partition
        (fun part ->
          (* Pushable: references exactly one vertex alias and no edge
             alias. *)
          let touches_edge =
            List.exists (fun a -> alias_slot e_aliases a >= 0) (expr_aliases_of e_aliases part)
          in
          if touches_edge then false
          else
            match expr_vertex_aliases_only v_aliases part with
            | Some names -> List.length (List.sort_uniq compare names) = 1
            | None -> false)
        parts
    in
    let by_alias = Hashtbl.create 4 in
    List.iter
      (fun part ->
        match expr_vertex_aliases_only v_aliases part with
        | Some (name :: _) ->
          Hashtbl.replace by_alias name
            (part :: (try Hashtbl.find by_alias name with Not_found -> []))
        | _ -> assert false)
      pushable;
    let alias_pred alias v =
      match Hashtbl.find_opt by_alias alias with
      | None -> true
      | Some parts ->
        let env = env_with ctx [ (alias, V.Vertex v) ] in
        List.for_all (fun p -> V.to_bool (eval_expr env p)) parts
    in
    let residual_expr =
      match residual with
      | [] -> None
      | first :: rest ->
        Some (List.fold_left (fun acc p -> Ast.E_binop (Ast.And, acc, p)) first rest)
    in
    (alias_pred, residual_expr)

(* ------------------------------------------------------------------ *)
(* ACCUM / POST_ACCUM execution                                        *)

let row_env ctx (bt : binding_table) (r : row) (locals : (string, V.t) Hashtbl.t)
    (overlay : overlay) =
  let lookup name =
    match Hashtbl.find_opt locals name with
    | Some v -> Some v
    | None ->
      let vs = alias_slot bt.v_aliases name in
      if vs >= 0 && r.verts.(vs) >= 0 then Some (V.Vertex r.verts.(vs))
      else begin
        let es = alias_slot bt.e_aliases name in
        if es >= 0 && r.edges.(es) >= 0 then Some (V.Edge r.edges.(es)) else None
      end
  in
  { e_ctx = ctx; e_lookup = lookup; e_overlay = Some overlay; e_agg = None }

let resolve_target env (t : Ast.acc_target) : Accum.Store.target =
  match t with
  | Ast.T_global name -> Accum.Store.Global name
  | Ast.T_vertex (alias, name) -> Accum.Store.Vertex_acc (name, resolve_vertex env alias)

let rec exec_acc_stmt ctx phase env locals overlay mult (s : Ast.acc_stmt) =
  match s with
  | Ast.A_local (x, e) -> Hashtbl.replace locals x (eval_expr env e)
  | Ast.A_input (t, e) ->
    let target = resolve_target env t in
    let v = eval_expr env e in
    Accum.Store.buffer_input phase target v mult
  | Ast.A_assign (t, e) ->
    let target = resolve_target env t in
    let v = eval_expr env e in
    Accum.Store.buffer_assign phase target v;
    Hashtbl.replace overlay target v
  | Ast.A_if (c, th, el) ->
    let branch = if V.to_bool (eval_expr env c) then th else el in
    List.iter (exec_acc_stmt ctx phase env locals overlay mult) branch
  | Ast.A_attr_assign (alias, attr, e) ->
    let v = eval_expr env e in
    (match env.e_lookup alias with
     | Some (V.Vertex vid) -> G.set_vertex_attr ctx.graph vid attr v
     | Some (V.Edge eid) -> G.set_edge_attr ctx.graph eid attr v
     | _ -> error "unbound variable %s in attribute assignment" alias)

let exec_accum ctx (bt : binding_table) stmts =
  if stmts <> [] then
    (* The span captures the full map+reduce: acc-executions buffer, then
       Store.commit reports merge/assign counts into this span. *)
    Obs.Trace.span "accum" (fun () ->
        if Obs.Trace.enabled () then
          Obs.Trace.set_attr "rows" (Obs.Json.Int (List.length bt.rows));
        let phase = Accum.Store.begin_phase ctx.store in
        List.iter
          (fun r ->
            Interrupt.tick ();
            let locals = Hashtbl.create 8 in
            let overlay = overlay_create () in
            let env = row_env ctx bt r locals overlay in
            List.iter (exec_acc_stmt ctx phase env locals overlay r.mult) stmts)
          bt.rows;
        Accum.Store.commit ctx.store phase)

(* POST_ACCUM: one execution per distinct vertex of the statement's alias
   (statements referencing no vertex alias run once).  Consecutive
   statements over the same alias share one execution so that overlaid
   assignments stay visible (the PageRank idiom). *)
let post_accum_alias stmt =
  match Analyze.(post_accum_aliases stmt) with
  | [] -> None
  | a :: _ -> Some a

let exec_post_accum_inner ctx (bt : binding_table) stmts =
  begin
    (* Group consecutive statements by alias. *)
    let groups =
      List.fold_left
        (fun acc stmt ->
          let a = post_accum_alias stmt in
          match acc with
          | (a', stmts') :: rest when a' = a -> (a', stmt :: stmts') :: rest
          | _ -> (a, [ stmt ]) :: acc)
        [] stmts
      |> List.rev_map (fun (a, ss) -> (a, List.rev ss))
      |> List.rev
    in
    List.iter
      (fun (alias, group) ->
        let phase = Accum.Store.begin_phase ctx.store in
        (match alias with
         | None ->
           let locals = Hashtbl.create 4 in
           let overlay = overlay_create () in
           let env =
             { e_ctx = ctx; e_lookup = (fun n -> Hashtbl.find_opt locals n); e_overlay = Some overlay; e_agg = None }
           in
           List.iter (exec_acc_stmt ctx phase env locals overlay B.one) group
         | Some a ->
           let slot = alias_slot bt.v_aliases a in
           if slot < 0 then error "POST_ACCUM references unknown alias %s" a;
           let seen = Hashtbl.create 64 in
           List.iter
             (fun r ->
               Interrupt.tick ();
               let v = r.verts.(slot) in
               if v >= 0 && not (Hashtbl.mem seen v) then begin
                 Hashtbl.add seen v ();
                 let locals = Hashtbl.create 4 in
                 let overlay = overlay_create () in
                 let lookup name =
                   if name = a then Some (V.Vertex v) else Hashtbl.find_opt locals name
                 in
                 let env = { e_ctx = ctx; e_lookup = lookup; e_overlay = Some overlay; e_agg = None } in
                 List.iter (exec_acc_stmt ctx phase env locals overlay B.one) group
               end)
             bt.rows);
        Accum.Store.commit ctx.store phase)
      groups
  end

let exec_post_accum ctx (bt : binding_table) stmts =
  if stmts <> [] then
    Obs.Trace.span "post_accum" (fun () -> exec_post_accum_inner ctx bt stmts)

(* ------------------------------------------------------------------ *)
(* SELECT projection                                                   *)


let rec expr_aliases (bt : binding_table) (e : Ast.expr) : string list =
  match e with
  | Ast.E_var v | Ast.E_attr (v, _) | Ast.E_vacc (v, _) | Ast.E_vacc_prev (v, _) ->
    if alias_slot bt.v_aliases v >= 0 || alias_slot bt.e_aliases v >= 0 then [ v ] else []
  | Ast.E_binop (_, a, b) -> expr_aliases bt a @ expr_aliases bt b
  | Ast.E_unop (_, a) -> expr_aliases bt a
  | Ast.E_call (_, args) -> List.concat_map (expr_aliases bt) args
  | Ast.E_method (base, _, args) -> expr_aliases bt base @ List.concat_map (expr_aliases bt) args
  | Ast.E_tuple es -> List.concat_map (expr_aliases bt) es
  | Ast.E_arrow (ks, vs) -> List.concat_map (expr_aliases bt) (ks @ vs)
  | Ast.E_int _ | Ast.E_float _ | Ast.E_string _ | Ast.E_bool _ | Ast.E_null | Ast.E_gacc _
  | Ast.E_gacc_prev _ -> []

let column_name (e, alias) =
  match alias with
  | Some a -> a
  | None -> Ast.expr_to_string e

(* Distinct alias combinations appearing in the binding table, projected on
   the given alias list. *)
let distinct_combos (bt : binding_table) (aliases : string list) =
  let slots =
    List.map
      (fun a ->
        let vs = alias_slot bt.v_aliases a in
        if vs >= 0 then `V vs
        else
          let es = alias_slot bt.e_aliases a in
          if es >= 0 then `E es else error "unknown alias %s in SELECT" a)
      aliases
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun r ->
      let key = List.map (function `V s -> r.verts.(s) | `E s -> r.edges.(s)) slots in
      if List.for_all (fun v -> v >= 0) key && not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let bindings =
          List.map2
            (fun a slot ->
              match slot with
              | `V s -> (a, V.Vertex r.verts.(s))
              | `E s -> (a, V.Edge r.edges.(s)))
            aliases slots
        in
        out := bindings :: !out
      end)
    bt.rows;
  List.rev !out

let sort_uniq_str l = List.sort_uniq compare l

let apply_order_limit ctx bt rows_with_env order_by limit =
  (* rows_with_env : (Value.t array * (string * V.t) list) list *)
  ignore bt;
  let rows =
    match order_by with
    | [] -> rows_with_env
    | keys ->
      let with_keys =
        List.map
          (fun (row, bindings) ->
            let env = env_with ctx bindings in
            let ks = List.map (fun (e, desc) -> (eval_expr env e, desc)) keys in
            (ks, row, bindings))
          rows_with_env
      in
      let cmp (ka, _, _) (kb, _, _) =
        let rec go a b =
          match a, b with
          | [], [] -> 0
          | (va, desc) :: ra, (vb, _) :: rb ->
            let c = V.compare va vb in
            let c = if desc then -c else c in
            if c <> 0 then c else go ra rb
          | _ -> 0
        in
        go ka kb
      in
      List.map (fun (_, row, bindings) -> (row, bindings)) (List.stable_sort cmp with_keys)
  in
  match limit with
  | None -> rows
  | Some e ->
    let n = V.to_int (eval_expr (plain_env ctx) e) in
    List.filteri (fun i _ -> i < n) rows

(* ------------------------------------------------------------------ *)
(* GROUP BY evaluation (§4.2's SQL-borrowed clause).                    *)

module VH = Hashtbl.Make (struct
  type t = V.t

  let equal = V.equal
  let hash = V.hash
end)

(* Environment for one group: leaf lookups resolve against a representative
   member row (sound for expressions functionally dependent on the group
   key, as SQL requires); aggregate calls fold over all member rows with
   their path multiplicities (bag semantics, §6). *)
let grouped_env ctx (members : (row * env) list) =
  let rep_env = match members with (_, env) :: _ -> env | [] -> plain_env ctx in
  let one_arg name args =
    match args with
    | [ a ] -> a
    | _ -> error "aggregate %s expects one argument" name
  in
  let hook name args =
    match String.lowercase_ascii name with
    | "count" ->
      let total = List.fold_left (fun acc (r, _) -> B.add acc r.mult) B.zero members in
      (match B.to_int_opt total with
       | Some n -> V.Int n
       | None -> V.Float (B.to_float total))
    | "sum" ->
      let arg = one_arg name args in
      V.Float
        (List.fold_left
           (fun acc (r, env) -> acc +. (B.to_float r.mult *. V.to_float (eval_expr env arg)))
           0.0 members)
    | "avg" ->
      let arg = one_arg name args in
      let s, n =
        List.fold_left
          (fun (s, n) (r, env) ->
            let mu = B.to_float r.mult in
            (s +. (mu *. V.to_float (eval_expr env arg)), n +. mu))
          (0.0, 0.0) members
      in
      if n = 0.0 then V.Null else V.Float (s /. n)
    | ("min" | "max") as f ->
      let arg = one_arg name args in
      List.fold_left
        (fun best (_, env) ->
          let v = eval_expr env arg in
          match best with
          | V.Null -> v
          | b ->
            let smaller = V.compare v b < 0 in
            if (f = "min") = smaller then v else b)
        V.Null members
    | other -> error "unknown aggregate %s" other
  in
  { rep_env with e_agg = Some hook }

let eval_grouped_outputs ctx (bt : binding_table) (b : Ast.select_block)
    (outputs : Ast.output_spec list) =
  (* Partition the (filtered) binding table by the GROUP BY key. *)
  let groups : (row * env) list ref VH.t = VH.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let env = row_env ctx bt r (Hashtbl.create 1) (overlay_create ()) in
      let key = V.Vtuple (Array.of_list (List.map (eval_expr env) b.Ast.s_group_by)) in
      match VH.find_opt groups key with
      | Some members -> members := (r, env) :: !members
      | None ->
        VH.add groups key (ref [ (r, env) ]);
        order := key :: !order)
    bt.rows;
  let group_envs =
    List.rev_map (fun key -> grouped_env ctx (List.rev !(VH.find groups key))) !order
  in
  (* HAVING filters groups (aggregates allowed). *)
  let group_envs =
    match b.Ast.s_having with
    | None -> group_envs
    | Some cond -> List.filter (fun env -> V.to_bool (eval_expr env cond)) group_envs
  in
  (* ORDER BY over groups (aggregates allowed). *)
  let group_envs =
    match b.Ast.s_order_by with
    | [] -> group_envs
    | keys ->
      let with_keys =
        List.map (fun env -> (List.map (fun (e, desc) -> (eval_expr env e, desc)) keys, env)) group_envs
      in
      let cmp (ka, _) (kb, _) =
        let rec go a b =
          match a, b with
          | (va, desc) :: ra, (vb, _) :: rb ->
            let c = V.compare va vb in
            let c = if desc then -c else c in
            if c <> 0 then c else go ra rb
          | _ -> 0
        in
        go ka kb
      in
      List.map snd (List.stable_sort cmp with_keys)
  in
  let group_envs =
    match b.Ast.s_limit with
    | None -> group_envs
    | Some e ->
      let n = V.to_int (eval_expr (plain_env ctx) e) in
      List.filteri (fun i _ -> i < n) group_envs
  in
  List.iter
    (fun (o : Ast.output_spec) ->
      let rows =
        List.map
          (fun env -> Array.of_list (List.map (fun (e, _) -> eval_expr env e) o.Ast.o_exprs))
          group_envs
      in
      let table = Table.create (List.map column_name o.Ast.o_exprs) rows in
      let table = if o.Ast.o_distinct then Table.distinct table else table in
      ctx.tables <- (o.Ast.o_into, table) :: ctx.tables;
      Hashtbl.replace ctx.vars o.Ast.o_into (R_table table))
    outputs

let eval_select_inner ctx (binding : string option) (b : Ast.select_block) =
  let tracing = Obs.Trace.enabled () in
  (* Save primed snapshots before the block touches anything. *)
  if ctx.primed <> [] then Accum.Store.save_prev ctx.store ctx.primed;
  let alias_pred, residual = split_where ctx b.Ast.s_from b.Ast.s_where in
  let bt = Obs.Trace.span "match" (fun () -> build_binding_table ctx ~alias_pred b.Ast.s_from) in
  if tracing then Obs.Trace.set_attr "rows" (Obs.Json.Int (List.length bt.rows));
  (* Residual WHERE conjuncts (multi-alias or edge-touching). *)
  (match residual with
   | None -> ()
   | Some cond ->
     bt.rows <-
       List.filter
         (fun r ->
           let env = row_env ctx bt r (Hashtbl.create 1) (overlay_create ()) in
           V.to_bool (eval_expr env cond))
         bt.rows;
     if tracing then
       Obs.Trace.set_attr "rows_after_where" (Obs.Json.Int (List.length bt.rows)));
  (* ACCUM, then POST_ACCUM (each commits its phase). *)
  exec_accum ctx bt b.Ast.s_accum;
  exec_post_accum ctx bt b.Ast.s_post_accum;
  (* Outputs. *)
  (match b.Ast.s_target with
   | Ast.Sel_vertices (_, alias, into) ->
     let slot = alias_slot bt.v_aliases alias in
     if slot < 0 then error "SELECT %s: unknown alias" alias;
     let vids = distinct_ints (Array.of_list (List.map (fun r -> r.verts.(slot)) bt.rows)) in
     let vids = Array.of_list (List.filter (fun v -> v >= 0) (Array.to_list vids)) in
     (* HAVING filters the result set on accumulator values. *)
     let vids =
       match b.Ast.s_having with
       | None -> vids
       | Some cond ->
         Array.of_list
           (List.filter
              (fun v ->
                let env = env_with ctx [ (alias, V.Vertex v) ] in
                V.to_bool (eval_expr env cond))
              (Array.to_list vids))
     in
     let rows_with_env =
       List.map (fun v -> ([| V.Vertex v |], [ (alias, V.Vertex v) ])) (Array.to_list vids)
     in
     let rows = apply_order_limit ctx bt rows_with_env b.Ast.s_order_by b.Ast.s_limit in
     let vids = Array.of_list (List.map (fun (row, _) -> V.vertex_id row.(0)) rows) in
     if tracing then Obs.Trace.set_attr "out_vertices" (Obs.Json.Int (Array.length vids));
     let bind name = Hashtbl.replace ctx.vars name (R_vset vids) in
     Option.iter bind binding;
     Option.iter bind into
   | Ast.Sel_outputs outputs when b.Ast.s_group_by <> [] ->
     eval_grouped_outputs ctx bt b outputs
   | Ast.Sel_outputs outputs ->
     List.iter
       (fun (o : Ast.output_spec) ->
         let aliases = sort_uniq_str (List.concat_map (fun (e, _) -> expr_aliases bt e) o.Ast.o_exprs) in
         let combos =
           if aliases = [] then [ [] ]  (* pure-global output: one row *)
           else distinct_combos bt aliases
         in
         let combos =
           match b.Ast.s_having with
           | None -> combos
           | Some cond ->
             List.filter (fun bindings -> V.to_bool (eval_expr (env_with ctx bindings) cond)) combos
         in
         let rows_with_env =
           List.map
             (fun bindings ->
               let env = env_with ctx bindings in
               (Array.of_list (List.map (fun (e, _) -> eval_expr env e) o.Ast.o_exprs), bindings))
             combos
         in
         (* ORDER BY keys only apply to outputs that bind their aliases —
            the other fragments of a multi-output SELECT ignore them. *)
         let applicable_order =
           List.filter
             (fun (key, _) ->
               List.for_all (fun a -> List.mem a aliases) (expr_aliases bt key))
             b.Ast.s_order_by
         in
         let rows_with_env = apply_order_limit ctx bt rows_with_env applicable_order b.Ast.s_limit in
         let cols = List.map column_name o.Ast.o_exprs in
         let table = Table.create cols (List.map fst rows_with_env) in
         let table = if o.Ast.o_distinct then Table.distinct table else table in
         ctx.tables <- (o.Ast.o_into, table) :: ctx.tables;
         Hashtbl.replace ctx.vars o.Ast.o_into (R_table table))
       outputs)

(* Telemetry wrapper: one "select" span per execution, stamped with the
   block's FROM signature so EXPLAIN ANALYZE can fold executions (e.g. the
   iterations of a WHILE loop) back onto the static plan. *)
let m_selects = Obs.Metrics.counter "eval.select_blocks"
let h_select_ms = Obs.Metrics.histogram "eval.select_ms"

let eval_select ctx (binding : string option) (b : Ast.select_block) =
  Obs.Metrics.incr m_selects 1;
  Obs.Metrics.time h_select_ms (fun () ->
      if not (Obs.Trace.enabled ()) then eval_select_inner ctx binding b
      else
        Obs.Trace.span "select" (fun () ->
            Obs.Trace.set_attr "block" (Obs.Json.Str (Ast.select_signature b));
            (match binding with
             | Some x -> Obs.Trace.set_attr "binds" (Obs.Json.Str x)
             | None -> ());
            eval_select_inner ctx binding b))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let resolve_set_types ctx types =
  match types with
  | [ "*" ] -> Array.init (G.n_vertices ctx.graph) (fun i -> i)
  | _ ->
    Array.concat
      (List.map
         (fun ty ->
           match Pgraph.Schema.find_vertex_type (G.schema ctx.graph) ty with
           | Some vt -> G.vertices_of_type ctx.graph vt.Pgraph.Schema.vt_id
           | None -> error "unknown vertex type %s" ty)
         types)

let rec exec_stmt ctx (s : Ast.stmt) =
  (* Governor checkpoint: one tick per statement covers WHILE/FOREACH
     iterations (each body statement re-enters here), so a pure spin loop
     cannot outrun its budget. *)
  Interrupt.tick ();
  match s with
  | Ast.S_acc_decl d ->
    let init =
      match d.Ast.d_init with None -> None | Some e -> Some (eval_expr (plain_env ctx) e)
    in
    List.iter
      (fun (is_global, name) ->
        if is_global then begin
          Accum.Store.declare_global ctx.store name d.Ast.d_spec;
          Option.iter (fun v -> Accum.Store.assign_now ctx.store (Accum.Store.Global name) v) init
        end
        else begin
          Accum.Store.declare_vertex ctx.store name d.Ast.d_spec
            ~n_vertices:(G.n_vertices ctx.graph);
          Option.iter (Accum.Store.set_vertex_init ctx.store name) init
        end)
      d.Ast.d_names
  | Ast.S_set_assign (x, Ast.Set_types types) ->
    Hashtbl.replace ctx.vars x (R_vset (resolve_set_types ctx types))
  | Ast.S_set_assign (x, Ast.Set_copy y) ->
    (match Hashtbl.find_opt ctx.vars y with
     | Some rv -> Hashtbl.replace ctx.vars x rv
     | None -> error "unbound set variable %s" y)
  | Ast.S_set_assign (x, Ast.Set_op (op, a, b)) ->
    let resolve name =
      match Hashtbl.find_opt ctx.vars name with
      | Some (R_vset vs) -> vs
      | Some _ -> error "%s is not a vertex set" name
      | None ->
        (* A vertex-type name also denotes its full extent. *)
        (match Pgraph.Schema.find_vertex_type (G.schema ctx.graph) name with
         | Some vt -> G.vertices_of_type ctx.graph vt.Pgraph.Schema.vt_id
         | None -> error "unbound set variable %s" name)
    in
    let va = resolve a and vb = resolve b in
    let in_b = Hashtbl.create (Array.length vb) in
    Array.iter (fun v -> Hashtbl.replace in_b v ()) vb;
    let result =
      match op with
      | Ast.Op_union ->
        let seen = Hashtbl.create (Array.length va + Array.length vb) in
        let out = ref [] in
        Array.iter
          (fun v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              out := v :: !out
            end)
          (Array.append va vb);
        Array.of_list (List.rev !out)
      | Ast.Op_intersect -> Array.of_list (List.filter (Hashtbl.mem in_b) (Array.to_list va))
      | Ast.Op_minus ->
        Array.of_list (List.filter (fun v -> not (Hashtbl.mem in_b v)) (Array.to_list va))
    in
    Hashtbl.replace ctx.vars x (R_vset result)
  | Ast.S_select (binding, block) -> eval_select ctx binding block
  | Ast.S_gacc_assign (name, is_input, e) ->
    let v = eval_expr (plain_env ctx) e in
    if is_input then Accum.Store.input_now ctx.store (Accum.Store.Global name) v
    else Accum.Store.assign_now ctx.store (Accum.Store.Global name) v
  | Ast.S_let (x, e) ->
    (* Copying a set/table variable preserves its kind. *)
    (match e with
     | Ast.E_var y when Hashtbl.mem ctx.vars y -> Hashtbl.replace ctx.vars x (Hashtbl.find ctx.vars y)
     | _ -> Hashtbl.replace ctx.vars x (R_scalar (eval_expr (plain_env ctx) e)))
  | Ast.S_while (cond, limit, body) ->
    let max_iters =
      match limit with
      | None -> max_int
      | Some e -> V.to_int (eval_expr (plain_env ctx) e)
    in
    let i = ref 0 in
    Obs.Trace.span "while" (fun () ->
        while !i < max_iters && V.to_bool (eval_expr (plain_env ctx) cond) do
          (* Ticked here too: a WHILE with an empty body never re-enters
             exec_stmt, yet must still hit checkpoints. *)
          Interrupt.tick ();
          Obs.Trace.span "iter" (fun () ->
              Obs.Trace.set_attr "i" (Obs.Json.Int !i);
              List.iter (exec_stmt ctx) body);
          incr i
        done;
        Obs.Trace.set_attr "iterations" (Obs.Json.Int !i))
  | Ast.S_if (cond, th, el) ->
    if V.to_bool (eval_expr (plain_env ctx) cond) then List.iter (exec_stmt ctx) th
    else List.iter (exec_stmt ctx) el
  | Ast.S_foreach (x, e, body) ->
    let of_value = function
      | V.Vlist l -> l
      | V.Vtuple a -> Array.to_list a
      | v -> [ v ]
    in
    let items =
      match e with
      | Ast.E_var y ->
        (match Hashtbl.find_opt ctx.vars y with
         | Some (R_vset vs) -> Array.to_list (Array.map (fun v -> V.Vertex v) vs)
         | _ -> of_value (eval_expr (plain_env ctx) e))
      | _ -> of_value (eval_expr (plain_env ctx) e)
    in
    List.iter
      (fun item ->
        Hashtbl.replace ctx.vars x (R_scalar item);
        List.iter (exec_stmt ctx) body)
      items
  | Ast.S_print items ->
    List.iter
      (fun item ->
        match item with
        | Ast.P_expr (Ast.E_var name, alias) when Hashtbl.mem ctx.vars name ->
          let label = Option.value alias ~default:name in
          (match Hashtbl.find ctx.vars name with
           | R_vset vs ->
             Buffer.add_string ctx.print_buf
               (Printf.sprintf "%s = {%s}\n" label
                  (String.concat ", "
                     (List.map
                        (fun v -> V.to_string (V.Vertex v))
                        (Array.to_list vs))))
           | R_table t ->
             Buffer.add_string ctx.print_buf (Printf.sprintf "%s =\n%s" label (Table.to_string t))
           | R_scalar v ->
             Buffer.add_string ctx.print_buf (Printf.sprintf "%s = %s\n" label (V.to_string v)))
        | Ast.P_expr (e, alias) ->
          let v = eval_expr (plain_env ctx) e in
          let label = Option.value alias ~default:(Ast.expr_to_string e) in
          Buffer.add_string ctx.print_buf (Printf.sprintf "%s = %s\n" label (V.to_string v))
        | Ast.P_proj (setname, exprs) ->
          let vs =
            match Hashtbl.find_opt ctx.vars setname with
            | Some (R_vset vs) -> vs
            | _ -> error "PRINT %s[...]: %s is not a vertex set" setname setname
          in
          let cols = List.map (fun e -> Ast.expr_to_string e) exprs in
          let rows =
            List.map
              (fun v ->
                let env = env_with ctx [ (setname, V.Vertex v) ] in
                Array.of_list (List.map (eval_expr env) exprs))
              (Array.to_list vs)
          in
          let t = Table.create cols rows in
          ctx.tables <- (setname, t) :: ctx.tables;
          Buffer.add_string ctx.print_buf (Table.to_string t))
      items
  | Ast.S_insert (ty, attrs, value_exprs) ->
    let values = List.map (eval_expr (plain_env ctx)) value_exprs in
    let schema = G.schema ctx.graph in
    (match Pgraph.Schema.find_vertex_type schema ty, Pgraph.Schema.find_edge_type schema ty with
     | Some _, _ ->
       if List.length attrs <> List.length values then
         error "INSERT INTO %s: %d attributes but %d values" ty (List.length attrs)
           (List.length values);
       (try ignore (G.add_vertex ctx.graph ty (List.combine attrs values))
        with Invalid_argument msg -> error "INSERT: %s" msg)
     | None, Some _ ->
       (match values with
        | src :: dst :: attr_values ->
          if List.length attrs <> List.length attr_values then
            error "INSERT INTO %s: %d attributes but %d attribute values" ty (List.length attrs)
              (List.length attr_values);
          let src = V.vertex_id src and dst = V.vertex_id dst in
          (try ignore (G.add_edge ctx.graph ty src dst (List.combine attrs attr_values))
           with Invalid_argument msg -> error "INSERT: %s" msg)
        | _ -> error "INSERT INTO %s (edge type): VALUES needs source and target vertices" ty)
     | None, None -> error "INSERT INTO %s: unknown type" ty)
  | Ast.S_return e ->
    let rv =
      match e with
      | Ast.E_var name when Hashtbl.mem ctx.vars name -> Hashtbl.find ctx.vars name
      | _ -> R_scalar (eval_expr (plain_env ctx) e)
    in
    ctx.returned <- Some rv;
    raise Returned

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let finish ctx =
  let vsets =
    Hashtbl.fold
      (fun name rv acc -> match rv with R_vset vs -> (name, vs) :: acc | _ -> acc)
      ctx.vars []
  in
  { r_tables = List.rev ctx.tables;
    r_printed = Buffer.contents ctx.print_buf;
    r_return = ctx.returned;
    r_vsets = List.sort compare vsets }

let make_ctx ?partition graph semantics params primed =
  let ctx =
    { graph;
      store = Accum.Store.create ();
      semantics;
      vars = Hashtbl.create 16;
      tables = [];
      print_buf = Buffer.create 256;
      returned = None;
      primed;
      partition }
  in
  List.iter (fun (name, v) -> Hashtbl.replace ctx.vars name (R_scalar v)) params;
  ctx

let run_checked ?partition graph semantics params stmts (info : Analyze.info) =
  (match info.Analyze.errors with
   | [] -> ()
   | errs -> error "analysis failed: %s" (String.concat "; " errs));
  let ctx = make_ctx ?partition graph semantics params info.Analyze.primed in
  (try List.iter (exec_stmt ctx) stmts with
   | Returned -> ()
   | V.Type_error msg -> error "type error: %s" msg);
  finish ctx

let run_block graph ?(semantics = Sem.All_shortest) ?(params = []) ?partition stmts =
  run_checked ?partition graph semantics params stmts (Analyze.check_block stmts)

let query_semantics ?semantics (q : Ast.query) =
  match semantics, q.Ast.q_semantics with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> Sem.All_shortest

(* Check parameters against the header. *)
let check_params (q : Ast.query) params =
  List.iter
    (fun (p : Ast.param) ->
      match List.assoc_opt p.Ast.p_name params with
      | None -> error "missing parameter %s" p.Ast.p_name
      | Some v ->
        let ok =
          match p.Ast.p_ty, v with
          | Ast.Ty_int, V.Int _
          | Ast.Ty_float, (V.Float _ | V.Int _)
          | Ast.Ty_string, V.Str _
          | Ast.Ty_bool, V.Bool _
          | Ast.Ty_datetime, V.Datetime _
          | Ast.Ty_vertex _, V.Vertex _ -> true
          | _ -> false
        in
        if not ok then error "parameter %s has the wrong type" p.Ast.p_name)
    q.Ast.q_params

let run_query graph ?semantics ?partition ~params (q : Ast.query) =
  let sem = query_semantics ?semantics q in
  check_params q params;
  run_checked ?partition graph sem params q.Ast.q_body (Analyze.check_query q)

let run_source graph ?semantics ?partition ?(params = []) src =
  match Parser.parse_query src with
  | q -> run_query graph ?semantics ?partition ~params q
  | exception Parser.Error _ ->
    let stmts = Parser.parse_block src in
    run_block graph ?semantics:(semantics : Sem.t option) ?partition ~params stmts

let table result name =
  match List.assoc_opt name result.r_tables with
  | Some t -> t
  | None -> error "no table named %s in result" name

let return_value result =
  match result.r_return with
  | Some (R_scalar v) -> v
  | Some (R_vset vs) -> V.Vlist (Array.to_list (Array.map (fun v -> V.Vertex v) vs))
  | Some (R_table t) -> V.Vlist (List.map (fun r -> V.Vtuple r) t.Table.rows)
  | None -> error "query did not RETURN"
