(** Install-time query compilation: closure plans over the {!Eval} runtime.

    TigerGraph's install-once/invoke-many workflow exists so per-invoke
    work can be paid once at install time.  {!compile} lowers an analyzed
    AST to a flat plan of OCaml closures: statement sequences, WHILE loops
    and ACCUM/POST-ACCUM row kernels become staged functions with every
    name resolved to a slot, the single-step DARPE-product scan specialized
    to its CSR segment symbols ({!Darpe.Dfa.sym} resolution done against
    the schema at compile time when one is supplied), binding tables
    unboxed over flat [int] arrays, and {!Interrupt} ticks emitted as
    generated checkpoints at the same program points the interpreter
    checks.

    Constructs off the hot path — [PRINT], [INSERT], and [GROUP BY]
    SELECTs — stay interpreted: the plan calls {!Eval.exec_stmt} on the
    shared execution context for them, so compiled and interpreted
    fragments compose within one run.

    The interpreter remains the differential-testing oracle: for every
    query, [run (compile q) g ~params] must produce a result identical to
    [Eval.run_query g ~params q] — same tables in the same row order, same
    vertex sets, same PRINT output, same accumulator commits, and the same
    governor cancellation behavior under an {!Interrupt} budget.  See
    docs/COMPILER.md. *)

type plan

val compile : ?schema:Pgraph.Schema.t -> Ast.query -> plan
(** Analyzes ({!Analyze.check_query}) and lowers the query.  Raises
    {!Eval.Runtime_error} when analysis fails.  When [schema] is given,
    single-step segment symbols are resolved statically; plans still run
    correctly against graphs with a different schema (symbols are then
    resolved per execution). *)

val compile_block : ?schema:Pgraph.Schema.t -> Ast.stmt list -> plan
(** Lowers a bare statement block ("interpreted query" sources). *)

val run :
  plan -> ?semantics:Pathsem.Semantics.t -> ?partition:Shard.Partition.t ->
  params:(string * Pgraph.Value.t) list -> Pgraph.Graph.t -> Eval.result
(** Executes the plan.  Parameter checking, semantics resolution and error
    wrapping match {!Eval.run_query} exactly.  When [partition] has more
    than one shard, path matching runs as BSP supersteps over it and —
    for {!shard_safe} plans — ACCUM passes execute as per-shard partials
    merged at the snapshot barrier; results are bit-identical to the
    single-shard run (docs/SHARDING.md). *)

val shard_safe : plan -> bool
(** Whether ACCUM passes of this plan may shard ({!Analyze.info.shard_safe}
    verdict captured at compile time). *)

val compile_ms : plan -> float
(** Wall-clock milliseconds spent lowering (the install-time cost). *)

val plan_ops : plan -> int
(** Total statement operations in the plan, nested ones included. *)

val compiled_ops : plan -> int
(** Operations lowered to closures (the rest run via {!Eval.exec_stmt}). *)

val describe : plan -> string
(** Deterministic plan-shape rendering (op tree, per-SELECT kernel
    summary, compiled/interpreted marking) — the [EXPLAIN] section. *)
