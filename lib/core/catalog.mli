(** Query catalogs: named, pre-parsed and pre-analyzed GSQL queries.

    Mirrors TigerGraph's install-then-call workflow ([CREATE QUERY] once,
    invoke many times): installation parses and analyzes eagerly so calls
    fail fast, and repeated runs skip re-parsing. *)

type t

exception Error of string

val create : unit -> t

val install : t -> string -> string list
(** [install cat source] parses a program (one or more [CREATE QUERY]
    definitions), analyzes each, and registers them by name.  Returns the
    installed names in source order.  Raises {!Error} on parse/analysis
    failure or a duplicate name. *)

val install_query : t -> Ast.query -> unit
(** Registers an already-parsed query. *)

val names : t -> string list
val find : t -> string -> Ast.query option
val mem : t -> string -> bool

val drop : t -> string -> unit
(** Removes a query; silent when absent. *)

val run :
  t -> Pgraph.Graph.t -> ?semantics:Pathsem.Semantics.t ->
  params:(string * Pgraph.Value.t) list -> string -> Eval.result
(** [run cat g ~params name] executes the installed query.  Raises {!Error}
    on an unknown name. *)

val info_of : t -> string -> Analyze.info
(** Analysis results recorded at install time (tractability, mutation
    classification).  Raises {!Error} on an unknown name. *)

val source_of : t -> string -> string
(** The installed query re-rendered by {!Pretty.query}.  Raises {!Error} on
    an unknown name. *)

val signature_of : t -> string -> (string * Ast.param_ty) list
(** Parameter names and types of an installed query. *)
