(** Query catalogs: named, pre-parsed, pre-analyzed {e and pre-compiled}
    GSQL queries.

    Mirrors TigerGraph's install-then-call workflow ([CREATE QUERY] once,
    invoke many times): installation parses, analyzes and lowers each query
    to a {!Compile} closure plan eagerly, so calls fail fast and the
    per-invoke hot path never tree-walks the AST.  The interpreter remains
    available per call ([~interp:true]) or process-wide ([GSQL_INTERP=1])
    as the differential-testing oracle — see docs/COMPILER.md.

    Entries are immutable once installed; {!replace_query} swaps a name to
    a new (query, plan, generation) triple atomically, so a concurrent
    reader never observes the new plan under the old generation (the
    service keys its result cache on the generation for exactly this
    reason). *)

type t

exception Error of string

val create : unit -> t

val install : ?schema:Pgraph.Schema.t -> t -> string -> string list
(** [install cat source] parses a program (one or more [CREATE QUERY]
    definitions), analyzes and compiles each, and registers them by name.
    Returns the installed names in source order.  Raises {!Error} on
    parse/analysis/compile failure or a duplicate name.  [schema] lets the
    compiler resolve CSR segment symbols at install time. *)

val install_query : ?schema:Pgraph.Schema.t -> t -> Ast.query -> unit
(** Registers an already-parsed query.  Raises {!Error} when the name is
    taken (use {!replace_query} to reinstall). *)

val replace_query : ?schema:Pgraph.Schema.t -> t -> Ast.query -> unit
(** Installs or reinstalls: compiles outside the catalog lock, then swaps
    the entry — plan and generation together — in one atomic step. *)

val recompile : ?schema:Pgraph.Schema.t -> t -> unit
(** Re-lowers every installed query (e.g. after a graph reload changed the
    schema the plans were specialized against).  Bumps every generation. *)

val names : t -> string list
val find : t -> string -> Ast.query option
val mem : t -> string -> bool

(** A consistent snapshot of one installed query, taken under a single
    lock acquisition: the plan always belongs to the generation. *)
type installed = {
  i_query : Ast.query;
  i_info : Analyze.info;
  i_plan : Compile.plan;
  i_generation : int;
}

val lookup : t -> string -> installed option

val drop : t -> string -> unit
(** Removes a query; silent when absent. *)

val run :
  ?interp:bool -> t -> Pgraph.Graph.t -> ?semantics:Pathsem.Semantics.t ->
  params:(string * Pgraph.Value.t) list -> string -> Eval.result
(** [run cat g ~params name] executes the installed query — through its
    compiled plan by default, through {!Eval} when [interp:true] or the
    [GSQL_INTERP] environment variable is set.  Raises {!Error} on an
    unknown name. *)

val info_of : t -> string -> Analyze.info
(** Analysis results recorded at install time (tractability, mutation
    classification).  Raises {!Error} on an unknown name. *)

val plan_of : t -> string -> Compile.plan
(** The compiled plan (EXPLAIN, compile stats).  Raises {!Error} on an
    unknown name. *)

val generation_of : t -> string -> int
(** Monotone install generation; changes on every {!replace_query} or
    {!recompile} of the name.  Raises {!Error} on an unknown name. *)

val source_of : t -> string -> string
(** The installed query re-rendered by {!Pretty.query}.  Raises {!Error} on
    an unknown name. *)

val signature_of : t -> string -> (string * Ast.param_ty) list
(** Parameter names and types of an installed query. *)
