(** The GSQL interpreter.

    Implements the paper's declarative semantics (§4): the FROM clause
    produces a {e compressed} binding table — one row per distinct binding of
    the pattern variables, carrying the count of witnessing legal paths as a
    multiplicity (Theorem 7.1) — WHERE filters it, ACCUM executes once per
    row under snapshot semantics with multiplicity-aware accumulator inputs,
    POST_ACCUM executes once per distinct vertex, and the (multi-output)
    SELECT clause projects result tables.

    The path-legality semantics defaults to all-shortest-paths and can be
    overridden per query ([SEMANTICS "non-repeated-edge"] in the header) or
    per call ([~semantics]) — the paper's benchmarks exercise exactly this
    switch. *)

exception Runtime_error of string

(** A runtime binding: scalar value, vertex set, or result table. *)
type rt_value =
  | R_scalar of Pgraph.Value.t
  | R_vset of int array
  | R_table of Table.t

type result = {
  r_tables : (string * Table.t) list;  (** INTO tables, in creation order *)
  r_printed : string;                  (** rendered PRINT output *)
  r_return : rt_value option;          (** RETURN payload *)
  r_vsets : (string * int array) list; (** final vertex-set variables *)
}

val run_query :
  Pgraph.Graph.t -> ?semantics:Pathsem.Semantics.t -> ?partition:Shard.Partition.t ->
  params:(string * Pgraph.Value.t) list -> Ast.query -> result
(** Analyzes ({!Analyze.check_query}) and executes the query.  Raises
    {!Runtime_error} on analysis errors, missing/ill-typed parameters, or
    execution failures.  When [partition] holds more than one shard, path
    matching runs as BSP supersteps over it (identical results — see
    docs/SHARDING.md). *)

val run_block :
  Pgraph.Graph.t -> ?semantics:Pathsem.Semantics.t ->
  ?params:(string * Pgraph.Value.t) list -> ?partition:Shard.Partition.t ->
  Ast.stmt list -> result
(** Executes a bare statement block ("interpreted query"). *)

val run_source :
  Pgraph.Graph.t -> ?semantics:Pathsem.Semantics.t -> ?partition:Shard.Partition.t ->
  ?params:(string * Pgraph.Value.t) list -> string -> result
(** Parses a single [CREATE QUERY] definition (or, failing that, a bare
    statement block) and runs it. *)

val table : result -> string -> Table.t
(** Looks up an INTO table by name; raises {!Runtime_error} when absent. *)

val return_value : result -> Pgraph.Value.t
(** The RETURN payload as a value ([Vlist] of vertices for a set, flattened
    table rows for a table).  Raises {!Runtime_error} when the query did not
    return. *)

(** {1 Internal runtime surface}

    Everything below is the interpreter's own machinery, exposed so that
    {!Compile} can stage closures over the {e same} runtime: compiled plans
    share the execution context, fall back to {!exec_stmt} for cold
    constructs, and reuse the seed-set/predicate helpers verbatim so the
    two paths cannot drift semantically.  Not a stable API — nothing
    outside [Gsql] should touch it. *)

type ctx = {
  graph : Pgraph.Graph.t;
  store : Accum.Store.t;
  semantics : Pathsem.Semantics.t;
  vars : (string, rt_value) Hashtbl.t;
  mutable tables : (string * Table.t) list;  (** reverse creation order *)
  print_buf : Buffer.t;
  mutable returned : rt_value option;
  primed : string list;  (** accumulator families used with ['] *)
  mutable partition : Shard.Partition.t option;
      (** sharded execution: supersteps for path matching, per-shard
          ACCUM partials for shard-safe compiled plans *)
}

exception Returned
(** Raised by [RETURN]; {!run_query} catches it, a compiled plan must too. *)

type overlay = (Accum.Store.target, Pgraph.Value.t) Hashtbl.t
(** Within-execution assignment visibility for ACCUM snapshot semantics. *)

type env = {
  e_ctx : ctx;
  e_lookup : string -> Pgraph.Value.t option;
  e_overlay : overlay option;
  e_agg : (string -> Ast.expr list -> Pgraph.Value.t) option;
}

val error : ('a, unit, string, 'b) format4 -> 'a
(** Raises {!Runtime_error} with a formatted message. *)

val eval_expr : env -> Ast.expr -> Pgraph.Value.t
val builtin_call : string -> Pgraph.Value.t list -> Pgraph.Value.t
val ctx_var_value : ctx -> string -> Pgraph.Value.t option
val plain_env : ctx -> env
val env_with : ctx -> (string * Pgraph.Value.t) list -> env

val endpoint_alias : Ast.endpoint -> string
val endpoint_seed : ctx -> Ast.endpoint -> int array
val endpoint_pred : ctx -> Ast.endpoint -> int -> bool
val alias_constraint : ctx -> string -> int option
(** A vertex-valued parameter or prior binding pinning the alias. *)

val alias_slot : string array -> string -> int
(** Index of [name] in the alias array, [-1] when absent. *)

val collect_aliases : Ast.conjunct list -> string array * string array
(** Vertex and edge alias slots of a FROM clause, in first-mention order. *)

val and_conjuncts : Ast.expr -> Ast.expr list
(** Splits a top-level AND tree (WHERE push-down decomposition). *)

val expr_vertex_aliases_only : string array -> Ast.expr -> string list option
(** [Some names] when the expression mentions pattern aliases only through
    the returned vertex aliases; [None] = not pushable. *)

val expr_aliases_of : string array -> Ast.expr -> string list
(** Aliases from the given slot array that the expression mentions. *)

val exec_stmt : ctx -> Ast.stmt -> unit
(** One interpreted statement (ticks the {!Interrupt} governor itself);
    compiled plans call this for constructs they leave interpreted. *)

val make_ctx :
  ?partition:Shard.Partition.t ->
  Pgraph.Graph.t -> Pathsem.Semantics.t -> (string * Pgraph.Value.t) list ->
  string list -> ctx

val finish : ctx -> result

val query_semantics : ?semantics:Pathsem.Semantics.t -> Ast.query -> Pathsem.Semantics.t
(** Per-call override, else the query's [SEMANTICS] pragma, else
    all-shortest. *)

val check_params : Ast.query -> (string * Pgraph.Value.t) list -> unit
(** Raises {!Runtime_error} on missing or ill-typed parameters. *)
