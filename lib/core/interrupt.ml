type reason = Cancelled | Deadline | Steps | Rows

exception Interrupted of reason

let reason_to_string = function
  | Cancelled -> "cancelled"
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Rows -> "rows"

let () =
  Printexc.register_printer (function
    | Interrupted r -> Some (Printf.sprintf "Interrupt.Interrupted(%s)" (reason_to_string r))
    | _ -> None)

type limits = {
  l_timeout_ms : int option;
  l_max_steps : int option;
  l_max_rows : int option;
}

let no_limits = { l_timeout_ms = None; l_max_steps = None; l_max_rows = None }

type budget = {
  b_cancel : bool Atomic.t;
  b_deadline : float;  (* absolute gettimeofday; infinity = none *)
  b_max_steps : int;  (* max_int = none *)
  b_max_rows : int;  (* max_int = none *)
  b_steps : int Atomic.t;  (* shared across domains under this budget *)
  b_rows : int Atomic.t;  (* cumulative rows materialized (check_rows sums) *)
}

let check_interval = 256

let make ?cancel ?(deadline = infinity) ?(max_steps = max_int) ?(max_rows = max_int) () =
  {
    b_cancel = (match cancel with Some c -> c | None -> Atomic.make false);
    b_deadline = deadline;
    b_max_steps = max_steps;
    b_max_rows = max_rows;
    b_steps = Atomic.make 0;
    b_rows = Atomic.make 0;
  }

let of_limits ?cancel ?now limits =
  let deadline =
    match limits.l_timeout_ms with
    | None -> infinity
    | Some ms ->
        let now = match now with Some t -> t | None -> Unix.gettimeofday () in
        now +. (float_of_int ms /. 1000.)
  in
  make ?cancel ~deadline
    ?max_steps:limits.l_max_steps
    ?max_rows:limits.l_max_rows
    ()

let cancel b = Atomic.set b.b_cancel true
let cancel_token b = b.b_cancel
let cancelled b = Atomic.get b.b_cancel
let deadline b = b.b_deadline
let steps b = Atomic.get b.b_steps
let rows b = Atomic.get b.b_rows

(* Pointwise minimum of two limit records — the combinator quota
   enforcement uses to cap an engine budget by a tenant's remaining
   allowance (None = unlimited on that axis). *)
let min_limits a b =
  let min_opt x y =
    match (x, y) with
    | None, z | z, None -> z
    | Some x, Some y -> Some (min x y)
  in
  { l_timeout_ms = min_opt a.l_timeout_ms b.l_timeout_ms;
    l_max_steps = min_opt a.l_max_steps b.l_max_steps;
    l_max_rows = min_opt a.l_max_rows b.l_max_rows }

(* Per-domain governor slot: the installed budget plus a local credit
   counter so the amortization needs no cross-domain coordination. *)
type slot = { sb : budget; s_interval : int; mutable credit : int }

let key : slot option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let n_checks = Atomic.make 0
let checks_performed () = Atomic.get n_checks

(* Budgets with a small step ceiling check more often than the global
   interval, so tiny test budgets are enforced with useful granularity. *)
let interval_for b =
  if b.b_max_steps = max_int then check_interval
  else max 1 (min check_interval (b.b_max_steps / 4))

let check_now b ~consumed =
  Atomic.incr n_checks;
  let total =
    if consumed = 0 then Atomic.get b.b_steps
    else Atomic.fetch_and_add b.b_steps consumed + consumed
  in
  if Atomic.get b.b_cancel then raise (Interrupted Cancelled);
  if b.b_deadline < infinity && Unix.gettimeofday () >= b.b_deadline then
    raise (Interrupted Deadline);
  if total > b.b_max_steps then raise (Interrupted Steps)

let tick_n n =
  match Domain.DLS.get key with
  | None -> ()
  | Some s ->
      s.credit <- s.credit - n;
      if s.credit <= 0 then begin
        let consumed = s.s_interval - s.credit in
        s.credit <- s.s_interval;
        check_now s.sb ~consumed
      end

let tick () = tick_n 1

let check_rows n =
  match Domain.DLS.get key with
  | None -> ()
  | Some s ->
      (* Charge before the ceiling check: quota accounting should see the
         rows an over-limit materialization attempted, not just the ones
         that fit. *)
      if n > 0 then ignore (Atomic.fetch_and_add s.sb.b_rows n);
      if n > s.sb.b_max_rows then raise (Interrupted Rows);
      (* Row materialization points are rare and already O(n); use them
         as hard checkpoints so cancellation is noticed between ticks. *)
      check_now s.sb ~consumed:0

let governed () = Domain.DLS.get key <> None

let with_budget b f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some { sb = b; s_interval = interval_for b; credit = interval_for b });
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) (fun () ->
      check_now b ~consumed:0;
      f ())

let with_current cur f =
  match cur with Some b -> with_budget b f | None -> f ()

let current () =
  match Domain.DLS.get key with None -> None | Some s -> Some s.sb
