exception Error of string

type entry = {
  query : Ast.query;
  info : Analyze.info;
  plan : Compile.plan;
  generation : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse installation order *)
  mutable next_gen : int;
  lock : Mutex.t;
  (* Guards entries/order/next_gen.  Plans themselves are immutable, so a
     reader holding an [entry] keeps a consistent (query, plan, generation)
     triple even while a reinstall swaps the name to a new one. *)
}

let create () =
  { entries = Hashtbl.create 16;
    order = [];
    next_gen = 0;
    lock = Mutex.create () }

let locked cat f =
  Mutex.lock cat.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cat.lock) f

(* Interpreter escape hatch: GSQL_INTERP=1 makes every catalog run use the
   tree-walking oracle instead of the installed plan. *)
let interp_default () =
  match Sys.getenv_opt "GSQL_INTERP" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let analyze (q : Ast.query) =
  let info = Analyze.check_query q in
  (match info.Analyze.errors with
   | [] -> ()
   | errs ->
     raise
       (Error (Printf.sprintf "query %s failed analysis: %s" q.Ast.q_name (String.concat "; " errs))));
  info

let compile_entry ?schema (q : Ast.query) =
  let info = analyze q in
  let plan =
    try Compile.compile ?schema q
    with Eval.Runtime_error msg ->
      raise (Error (Printf.sprintf "query %s failed to compile: %s" q.Ast.q_name msg))
  in
  (info, plan)

let install_query ?schema cat (q : Ast.query) =
  let info, plan = compile_entry ?schema q in
  locked cat (fun () ->
      if Hashtbl.mem cat.entries q.Ast.q_name then
        raise (Error (Printf.sprintf "query %s is already installed" q.Ast.q_name));
      let generation = cat.next_gen in
      cat.next_gen <- generation + 1;
      Hashtbl.replace cat.entries q.Ast.q_name { query = q; info; plan; generation };
      cat.order <- q.Ast.q_name :: cat.order)

(* Reinstall without a window where the name is missing or where the new
   plan is visible under the old generation: analysis and compilation
   happen outside the lock, the entry swap (plan + generation together) is
   one mutation under it. *)
let replace_query ?schema cat (q : Ast.query) =
  let info, plan = compile_entry ?schema q in
  locked cat (fun () ->
      let fresh = not (Hashtbl.mem cat.entries q.Ast.q_name) in
      let generation = cat.next_gen in
      cat.next_gen <- generation + 1;
      Hashtbl.replace cat.entries q.Ast.q_name { query = q; info; plan; generation };
      if fresh then cat.order <- q.Ast.q_name :: cat.order)

let install ?schema cat source =
  let program =
    try Parser.parse_program source with Parser.Error msg -> raise (Error msg)
  in
  if program = [] then raise (Error "no CREATE QUERY definitions in source");
  List.iter (install_query ?schema cat) program;
  List.map (fun (q : Ast.query) -> q.Ast.q_name) program

let names cat = locked cat (fun () -> List.rev cat.order)

let find_entry cat name = locked cat (fun () -> Hashtbl.find_opt cat.entries name)

let find cat name = Option.map (fun e -> e.query) (find_entry cat name)

let mem cat name = locked cat (fun () -> Hashtbl.mem cat.entries name)

let drop cat name =
  locked cat (fun () ->
      if Hashtbl.mem cat.entries name then begin
        Hashtbl.remove cat.entries name;
        cat.order <- List.filter (fun n -> n <> name) cat.order
      end)

let get cat name =
  match find_entry cat name with
  | Some e -> e
  | None -> raise (Error (Printf.sprintf "no installed query named %s" name))

type installed = {
  i_query : Ast.query;
  i_info : Analyze.info;
  i_plan : Compile.plan;
  i_generation : int;
}

(* One lock acquisition — callers get a consistent (query, plan,
   generation) snapshot even against concurrent reinstalls. *)
let lookup cat name =
  Option.map
    (fun e ->
      { i_query = e.query;
        i_info = e.info;
        i_plan = e.plan;
        i_generation = e.generation })
    (find_entry cat name)

(* Re-resolve every plan's static specializations against a new schema
   (service graph reload).  Generations advance: the plans changed. *)
let recompile ?schema cat =
  let entries = locked cat (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) cat.entries []) in
  List.iter (fun e -> replace_query ?schema cat e.query) entries

let run ?interp cat g ?semantics ~params name =
  let e = get cat name in
  let interp = match interp with Some b -> b | None -> interp_default () in
  try
    if interp then Eval.run_query g ?semantics ~params e.query
    else Compile.run e.plan ?semantics ~params g
  with Eval.Runtime_error msg -> raise (Error (Printf.sprintf "%s: %s" name msg))

let info_of cat name = (get cat name).info

let plan_of cat name = (get cat name).plan

let generation_of cat name = (get cat name).generation

let source_of cat name = Pretty.query (get cat name).query

let signature_of cat name =
  List.map (fun (p : Ast.param) -> (p.Ast.p_name, p.Ast.p_ty)) (get cat name).query.Ast.q_params
