exception Error of string

type entry = {
  query : Ast.query;
  info : Analyze.info;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse installation order *)
}

let create () = { entries = Hashtbl.create 16; order = [] }

let install_query cat (q : Ast.query) =
  if Hashtbl.mem cat.entries q.Ast.q_name then
    raise (Error (Printf.sprintf "query %s is already installed" q.Ast.q_name));
  let info = Analyze.check_query q in
  (match info.Analyze.errors with
   | [] -> ()
   | errs ->
     raise
       (Error (Printf.sprintf "query %s failed analysis: %s" q.Ast.q_name (String.concat "; " errs))));
  Hashtbl.replace cat.entries q.Ast.q_name { query = q; info };
  cat.order <- q.Ast.q_name :: cat.order

let install cat source =
  let program =
    try Parser.parse_program source with Parser.Error msg -> raise (Error msg)
  in
  if program = [] then raise (Error "no CREATE QUERY definitions in source");
  List.iter (install_query cat) program;
  List.map (fun (q : Ast.query) -> q.Ast.q_name) program

let names cat = List.rev cat.order

let find cat name = Option.map (fun e -> e.query) (Hashtbl.find_opt cat.entries name)

let mem cat name = Hashtbl.mem cat.entries name

let drop cat name =
  if Hashtbl.mem cat.entries name then begin
    Hashtbl.remove cat.entries name;
    cat.order <- List.filter (fun n -> n <> name) cat.order
  end

let get cat name =
  match Hashtbl.find_opt cat.entries name with
  | Some e -> e
  | None -> raise (Error (Printf.sprintf "no installed query named %s" name))

let run cat g ?semantics ~params name =
  let e = get cat name in
  try Eval.run_query g ?semantics ~params e.query
  with Eval.Runtime_error msg -> raise (Error (Printf.sprintf "%s: %s" name msg))

let info_of cat name = (get cat name).info

let source_of cat name = Pretty.query (get cat name).query

let signature_of cat name =
  List.map (fun (p : Ast.param) -> (p.Ast.p_name, p.Ast.p_ty)) (get cat name).query.Ast.q_params
