(** Static analysis of parsed queries.

    Checks performed before evaluation:
    - every accumulator reference resolves to a declaration of matching kind
      (global [@@x] vs vertex [@x]);
    - edge aliases only appear on single-step DARPEs (variables bound inside
      Kleene scope are excluded from the paper's tractable class, §7);
    - ACCUM/POST_ACCUM statements reference at most one vertex alias per
      POST_ACCUM statement;
    - primed reads ([@a']) reference declared accumulators.

    Also classifies queries against the paper's tractable class
    (Theorem 7.1). *)

type info = {
  errors : string list;          (** empty = query accepted *)
  warnings : string list;
  tractable : bool;
      (** false when the query combines unbounded DARPEs with
          order-dependent accumulators (List/Array/[SumAccum<string>]) or
          edge variables — evaluation falls back to enumeration costs *)
  primed : string list;
      (** accumulator families read with the previous-value operator *)
  mutating : bool;
      (** true when evaluation can write graph state: a vertex/edge
          attribute assignment in ACCUM/POST_ACCUM or an INSERT anywhere
          in the body — the service routes such queries through the
          single-writer lane (docs/DURABILITY.md) *)
  shard_safe : bool;
      (** true when ACCUM phases may execute as per-shard partials merged
          at the barrier with bit-identical results: the block is
          read-only, every declared accumulator is
          {!Accum.Spec.shard_exact}, and no ACCUM clause contains an [=]
          assignment (last-writer-wins is order-sensitive).  Plans of
          unsafe queries fall back to single-shard ACCUM execution —
          docs/SHARDING.md *)
}

val check_query : Ast.query -> info
val check_block : Ast.stmt list -> info

val block_mutates : Ast.stmt list -> bool
(** The {!info.mutating} classification on a bare statement block. *)

val post_accum_aliases : Ast.acc_stmt -> string list
(** Vertex aliases a POST_ACCUM statement references (evaluator uses the
    head alias to drive the per-distinct-vertex execution). *)
