(** Accumulator type specifications (paper §3).

    A specification describes an accumulator's internal value type, input
    type and combiner ⊕; {!Acc} instantiates mutable state from it.  The
    constructor set mirrors GSQL's built-in accumulator library, including
    arbitrary nesting of accumulators as [MapAccum] values and the composite
    [GroupByAccum] the paper uses to subsume SQL GROUP BY (§8, Example 12). *)

type order = Asc | Desc

type t =
  | Sum_int               (** [SumAccum<int>] *)
  | Sum_float             (** [SumAccum<float>] *)
  | Sum_string            (** [SumAccum<string>] — concatenation; one of the
                              three order-{e dependent} types *)
  | Min_acc               (** [MinAccum<ordered>] *)
  | Max_acc               (** [MaxAccum<ordered>] *)
  | Avg_acc               (** [AvgAccum<num>] — order-invariant via
                              internal (sum, count) pair *)
  | Or_acc                (** [OrAccum] *)
  | And_acc               (** [AndAccum] *)
  | Set_acc               (** [SetAccum<T>] *)
  | Bag_acc               (** [BagAccum<T>] *)
  | List_acc              (** [ListAccum<T>] — order-dependent *)
  | Array_acc             (** [ArrayAccum<T>] — order-dependent *)
  | Map_acc of t          (** [MapAccum<K, A>] with nested accumulator [A] *)
  | Heap_acc of heap_spec (** [HeapAccum<Tup>(capacity, f1 dir, ...)] *)
  | Group_by of int * t list
      (** [GroupByAccum<k keys, nested accumulators>]: inputs are
          [(key-tuple → input-tuple)] pairs; each distinct key tuple owns one
          instance of every nested accumulator. *)
  | Custom of string
      (** user-defined accumulator from the {!Custom} registry (paper §3's
          extensible accumulator library) *)

and heap_spec = {
  h_capacity : int;
  h_fields : (int * order) list;
      (** lexicographic sort: tuple-field index plus direction *)
}

val order_invariant : t -> bool
(** Paper §4.3: whether the reduce phase result is independent of input
    order.  False exactly for [Sum_string], [List_acc], [Array_acc] — and
    for composites nesting them. *)

val shard_exact : t -> bool
(** Whether a permutation of the input-op sequence (per-shard grouping
    included) yields a {e bit-identical} accumulator value — the
    admission test for sharded ACCUM execution.  Strictly stronger than
    {!order_invariant}: float-summing types ([Sum_float], [Avg_acc]) and
    [Custom] combiners are order-invariant only algebraically, so they
    (and composites nesting them) fall back to single-shard execution. *)

val multiplicity_insensitive : t -> bool
(** Whether inputting the same value [µ] times equals inputting it once
    (Min/Max/Set/Or/And and maps thereof).  Drives the Theorem 7.1
    evaluation shortcut. *)

val default_value : t -> Pgraph.Value.t
(** The value read from a freshly created instance. *)

val to_string : t -> string
(** GSQL-style rendering, e.g. ["SumAccum<float>"]. *)

val pp : Format.formatter -> t -> unit
