(* GSQL_WORKERS pins the implicit fan-out width (bench/CI knob: a 1-vCPU
   container that oversubscribes to 4 domains measured 0.43x on the
   per-source engine).  Whatever the source, the width is clamped to the
   hardware's recommended domain count — explicit [?workers] arguments
   stay unclamped on purpose, tests use them to force oversubscription. *)
let env_workers () =
  match Sys.getenv_opt "GSQL_WORKERS" with
  | None -> None
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some w when w >= 1 -> Some w
               | _ -> None)

let default_workers n_items =
  let d = Domain.recommended_domain_count () in
  let w = match env_workers () with Some w -> min w d | None -> d in
  max 1 (min w n_items)

let slices n_items workers =
  (* Contiguous balanced slices: [(offset, length)] per worker. *)
  let base = n_items / workers and extra = n_items mod workers in
  let rec go i offset acc =
    if i = workers then List.rev acc
    else
      let len = base + if i < extra then 1 else 0 in
      go (i + 1) (offset + len) ((offset, len) :: acc)
  in
  go 0 0 []

let map_reduce_many ?workers (specs : Spec.t list) (items : 'a array)
    ~(feed : Acc.t array -> 'a -> unit) : Acc.t array =
  let n = Array.length items in
  let workers = match workers with Some w -> max 1 w | None -> default_workers n in
  (* Governor: spawned domains inherit the caller's budget (the cancel
     flag and step counter are shared atomics, so flipping the flag stops
     every slice), and each item is a checkpoint tick. *)
  let budget = Interrupt.current () in
  let run_slice (offset, len) =
    Interrupt.with_current budget (fun () ->
        let accs = Array.of_list (List.map Acc.create specs) in
        for i = offset to offset + len - 1 do
          Interrupt.tick ();
          feed accs items.(i)
        done;
        accs)
  in
  match slices n workers with
  | [] -> Array.of_list (List.map Acc.create specs)
  | first :: rest ->
    let domains = List.map (fun slice -> Domain.spawn (fun () -> run_slice slice)) rest in
    (* The current domain handles the first slice while the others run.
       Every spawned domain is joined even when a slice raises
       (e.g. Interrupt.Interrupted) so cancellation never leaks a domain;
       the first failure is re-raised after the joins. *)
    let mine = try Ok (run_slice first) with e -> Error e in
    let partials = List.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains in
    (match mine with
     | Error e -> raise e
     | Ok result ->
       List.iter
         (function
           | Ok partial -> Array.iteri (fun i acc -> Acc.merge ~into:result.(i) acc) partial
           | Error e -> raise e)
         partials;
       result)

let map_reduce ?workers spec items ~feed =
  (map_reduce_many ?workers [ spec ] items ~feed:(fun accs item -> feed accs.(0) item)).(0)
