type order = Asc | Desc

type t =
  | Sum_int
  | Sum_float
  | Sum_string
  | Min_acc
  | Max_acc
  | Avg_acc
  | Or_acc
  | And_acc
  | Set_acc
  | Bag_acc
  | List_acc
  | Array_acc
  | Map_acc of t
  | Heap_acc of heap_spec
  | Group_by of int * t list
  | Custom of string

and heap_spec = {
  h_capacity : int;
  h_fields : (int * order) list;
}

let rec order_invariant = function
  | Sum_string | List_acc | Array_acc -> false
  | Sum_int | Sum_float | Min_acc | Max_acc | Avg_acc | Or_acc | And_acc | Set_acc | Bag_acc
  | Heap_acc _ -> true
  | Map_acc nested -> order_invariant nested
  | Group_by (_, nested) -> List.for_all order_invariant nested
  | Custom _ -> true (* registration contract: ⊕ commutative/associative *)

(* Sharded ACCUM phases apply the same input ops as the sequential engine
   but permuted into per-shard groups, so "mergeable for sharding" is
   stricter than order-invariance: the fold must be {e bit-identical}
   under any permutation.  Integer/boolean/comparison folds are; float
   sums are only mathematically so (addition order moves the last ulp),
   and a custom combiner's registration contract promises algebraic, not
   bit-level, commutativity — both fall back to single-shard execution
   so the shards=1 ≡ shards=N differential contract stays exact. *)
let rec shard_exact = function
  | Sum_int | Min_acc | Max_acc | Or_acc | And_acc | Set_acc | Bag_acc -> true
  | Heap_acc _ -> true (* ties broken by full value compare: permutation-proof *)
  | Sum_float | Avg_acc -> false
  | Sum_string | List_acc | Array_acc -> false
  | Map_acc nested -> shard_exact nested
  | Group_by (_, nested) -> List.for_all shard_exact nested
  | Custom _ -> false

let rec multiplicity_insensitive = function
  | Min_acc | Max_acc | Or_acc | And_acc | Set_acc -> true
  | Sum_int | Sum_float | Sum_string | Avg_acc | Bag_acc | List_acc | Array_acc | Heap_acc _ ->
    false
  | Map_acc nested -> multiplicity_insensitive nested
  | Group_by (_, nested) -> List.for_all multiplicity_insensitive nested
  | Custom _ -> false

let default_value = function
  | Sum_int -> Pgraph.Value.Int 0
  | Sum_float -> Pgraph.Value.Float 0.0
  | Sum_string -> Pgraph.Value.Str ""
  | Min_acc | Max_acc -> Pgraph.Value.Null
  | Avg_acc -> Pgraph.Value.Float 0.0
  | Or_acc -> Pgraph.Value.Bool false
  | And_acc -> Pgraph.Value.Bool true
  | Set_acc | Bag_acc | List_acc | Array_acc | Map_acc _ | Heap_acc _ | Group_by _ ->
    Pgraph.Value.Vlist []
  | Custom name ->
    (match Custom.find name with
     | Some def -> def.Custom.init
     | None -> invalid_arg (Printf.sprintf "Spec: custom accumulator %s is not registered" name))

let rec to_string = function
  | Sum_int -> "SumAccum<int>"
  | Sum_float -> "SumAccum<float>"
  | Sum_string -> "SumAccum<string>"
  | Min_acc -> "MinAccum"
  | Max_acc -> "MaxAccum"
  | Avg_acc -> "AvgAccum"
  | Or_acc -> "OrAccum"
  | And_acc -> "AndAccum"
  | Set_acc -> "SetAccum"
  | Bag_acc -> "BagAccum"
  | List_acc -> "ListAccum"
  | Array_acc -> "ArrayAccum"
  | Map_acc nested -> Printf.sprintf "MapAccum<%s>" (to_string nested)
  | Heap_acc { h_capacity; h_fields } ->
    Printf.sprintf "HeapAccum(%d, %s)" h_capacity
      (String.concat ", "
         (List.map
            (fun (i, o) -> Printf.sprintf "#%d %s" i (match o with Asc -> "ASC" | Desc -> "DESC"))
            h_fields))
  | Group_by (nkeys, nested) ->
    Printf.sprintf "GroupByAccum<%d keys; %s>" nkeys (String.concat ", " (List.map to_string nested))
  | Custom name -> name

let pp fmt s = Format.pp_print_string fmt (to_string s)
