(** Parallel aggregation (paper §1, §4.3).

    The paper argues accumulator-based aggregation "is particularly
    well-suited to parallel graph processing, enabling several graph
    traversal threads to proceed in parallel, synchronizing via the
    accumulators", with snapshot semantics making BSP execution
    deterministic for order-invariant accumulators.

    This module realizes that claim on OCaml 5 domains: the input is
    partitioned across workers, each worker folds its slice into a private
    accumulator instance (no synchronization), and the partial states are
    combined with {!Acc.merge} — the homomorphism the property suite
    verifies.  For order-invariant accumulator types the result equals the
    sequential fold regardless of partitioning.

    Cooperative cancellation: worker domains inherit the caller's
    {!Interrupt} budget, tick once per item, and are always joined —
    cancelling a governed caller interrupts every slice without leaking a
    domain (the first slice failure is re-raised after all joins). *)

val default_workers : int -> int
(** [default_workers n_items] is the worker count used when [?workers] is
    omitted: [Domain.recommended_domain_count ()] capped by the item count,
    never below 1.  The [GSQL_WORKERS] environment variable (a positive
    integer) overrides the hardware default but is itself clamped to
    [recommended_domain_count] — a 1-vCPU CI container therefore never
    oversubscribes however the knob is set.  Explicit [?workers] arguments
    bypass this entirely.  The service worker pool sizes itself with this
    too. *)

val slices : int -> int -> (int * int) list
(** [slices n_items workers] partitions [0..n_items-1] into [workers]
    contiguous balanced [(offset, length)] slices, in order.  Lengths differ
    by at most one and sum to [n_items]; zero-length slices appear when
    [workers > n_items].  Exposed for reuse (load drivers, tests). *)

val map_reduce :
  ?workers:int -> Spec.t -> 'a array -> feed:(Acc.t -> 'a -> unit) -> Acc.t
(** [map_reduce spec items ~feed] folds every item into a fresh accumulator
    of type [spec], in parallel.  [workers] defaults to
    [Domain.recommended_domain_count ()], capped by the item count. *)

val map_reduce_many :
  ?workers:int -> Spec.t list -> 'a array -> feed:(Acc.t array -> 'a -> unit) -> Acc.t array
(** Multi-accumulator variant: each worker owns one private instance {e per
    spec} and [feed] deposits into any of them — the single-pass
    multi-aggregation of paper Example 4, parallelized. *)
