module V = Pgraph.Value
module B = Pgraph.Bignat

type target =
  | Global of string
  | Vertex_acc of string * int

type vertex_family = {
  vf_spec : Spec.t;
  vf_insts : (int, Acc.t) Hashtbl.t;  (* created on first touch; growable so
                                         vertices inserted mid-query still
                                         get instances *)
  mutable vf_init : V.t option;
}

type t = {
  globals : (string, Acc.t) Hashtbl.t;
  vertex_families : (string, vertex_family) Hashtbl.t;
  prev_globals : (string, V.t) Hashtbl.t;
  prev_vertex : (string, (int, V.t) Hashtbl.t) Hashtbl.t;
  touch_lock : Mutex.t;
      (* guards first-touch instance creation in [vertex_acc]: sharded
         ACCUM phases evaluate kernels on several domains at once, and a
         concurrent [Hashtbl.replace] on [vf_insts] would corrupt the
         table.  Everything else on the store stays single-domain (ops
         are buffered per phase; commits run on the driver). *)
}

type op =
  | Op_input of target * V.t * B.t
  | Op_assign of target * V.t

type phase = {
  ph_store : t;
  ops : op Pgraph.Vec.t;
}

let create () =
  { globals = Hashtbl.create 8;
    vertex_families = Hashtbl.create 8;
    prev_globals = Hashtbl.create 8;
    prev_vertex = Hashtbl.create 8;
    touch_lock = Mutex.create () }

let declare_global t name spec = Hashtbl.replace t.globals name (Acc.create spec)

let declare_vertex t name spec ~n_vertices =
  ignore n_vertices;
  Hashtbl.replace t.vertex_families name
    { vf_spec = spec; vf_insts = Hashtbl.create 64; vf_init = None }

let global_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.globals [] |> List.sort compare
let vertex_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.vertex_families [] |> List.sort compare

let is_global t name = Hashtbl.mem t.globals name
let is_vertex t name = Hashtbl.mem t.vertex_families name

let global_acc t name = Hashtbl.find t.globals name

let vertex_acc t name v =
  let fam = Hashtbl.find t.vertex_families name in
  match Hashtbl.find_opt fam.vf_insts v with
  | Some a -> a
  | None ->
    Mutex.lock t.touch_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.touch_lock)
      (fun () ->
        (* Re-check under the lock: another domain may have created the
           instance between our lock-free probe and acquiring it. *)
        match Hashtbl.find_opt fam.vf_insts v with
        | Some a -> a
        | None ->
          let a = Acc.create fam.vf_spec in
          (match fam.vf_init with Some init -> Acc.assign a init | None -> ());
          Hashtbl.replace fam.vf_insts v a;
          a)

let set_vertex_init t name init =
  let fam = Hashtbl.find t.vertex_families name in
  fam.vf_init <- Some init;
  (* Also reset instances that already exist. *)
  Hashtbl.iter (fun _ a -> Acc.assign a init) fam.vf_insts

let read t = function
  | Global name -> Acc.read (global_acc t name)
  | Vertex_acc (name, v) -> Acc.read (vertex_acc t name v)

let assign_now t target v =
  match target with
  | Global name -> Acc.assign (global_acc t name) v
  | Vertex_acc (name, vid) -> Acc.assign (vertex_acc t name vid) v

let input_now t target v =
  match target with
  | Global name -> Acc.input (global_acc t name) v
  | Vertex_acc (name, vid) -> Acc.input (vertex_acc t name vid) v

let begin_phase t = { ph_store = t; ops = Pgraph.Vec.create () }

let buffer_input ph target v mu = Pgraph.Vec.push ph.ops (Op_input (target, v, mu))
let buffer_assign ph target v = Pgraph.Vec.push ph.ops (Op_assign (target, v))

(* Telemetry (docs/OBSERVABILITY.md): merge/assign totals applied at the
   reduce phase.  The counters are registry handles created once; feeding
   them is a boolean check while telemetry is off. *)
let m_commits = Obs.Metrics.counter "accum.commits"
let m_merge_ops = Obs.Metrics.counter "accum.merge_ops"
let m_assign_ops = Obs.Metrics.counter "accum.assign_ops"
let h_commit_ops = Obs.Metrics.histogram "accum.ops_per_commit"

let commit t ph =
  if not (ph.ph_store == t) then invalid_arg "Store.commit: phase belongs to a different store";
  let merges = ref 0 and assigns = ref 0 in
  Pgraph.Vec.iter
    (function
      | Op_input (target, v, mu) ->
        incr merges;
        (match target with
         | Global name -> Acc.input_mult (global_acc t name) v mu
         | Vertex_acc (name, vid) -> Acc.input_mult (vertex_acc t name vid) v mu)
      | Op_assign (target, v) ->
        incr assigns;
        assign_now t target v)
    ph.ops;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_commits 1;
    Obs.Metrics.incr m_merge_ops !merges;
    Obs.Metrics.incr m_assign_ops !assigns;
    Obs.Metrics.observe h_commit_ops (float_of_int (!merges + !assigns))
  end;
  if Obs.Trace.enabled () then begin
    (* Report into whatever span the evaluator opened around this phase. *)
    Obs.Trace.add_count "merge_ops" !merges;
    Obs.Trace.add_count "assign_ops" !assigns;
    Obs.Trace.add_count "commits" 1
  end;
  Pgraph.Vec.clear ph.ops

let pending_ops ph = Pgraph.Vec.length ph.ops

let family_default fam =
  match fam.vf_init with
  | Some init -> init
  | None -> Spec.default_value fam.vf_spec

let save_prev t names =
  List.iter
    (fun name ->
      if Hashtbl.mem t.globals name then
        Hashtbl.replace t.prev_globals name (Acc.read (global_acc t name))
      else
        match Hashtbl.find_opt t.vertex_families name with
        | Some fam ->
          let snap = Hashtbl.create (Hashtbl.length fam.vf_insts) in
          Hashtbl.iter (fun vid a -> Hashtbl.replace snap vid (Acc.read a)) fam.vf_insts;
          Hashtbl.replace t.prev_vertex name snap
        | None -> ())
    names

let read_prev t = function
  | Global name ->
    (match Hashtbl.find_opt t.prev_globals name with
     | Some v -> v
     | None -> Spec.default_value (Acc.spec (global_acc t name)))
  | Vertex_acc (name, vid) ->
    let fam = Hashtbl.find t.vertex_families name in
    (match Hashtbl.find_opt t.prev_vertex name with
     | Some snap ->
       (match Hashtbl.find_opt snap vid with
        | Some v -> v
        | None -> family_default fam)
     | None -> family_default fam)

let reset_all t =
  Hashtbl.iter (fun _ a -> Acc.reset a) t.globals;
  Hashtbl.iter
    (fun _ fam ->
      Hashtbl.iter
        (fun _ a ->
          Acc.reset a;
          match fam.vf_init with Some init -> Acc.assign a init | None -> ())
        fam.vf_insts)
    t.vertex_families;
  Hashtbl.reset t.prev_globals;
  Hashtbl.reset t.prev_vertex
