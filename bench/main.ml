(* Benchmark harness entry point.

   Reproduces every table in the paper's evaluation:
     table1    — §7.1 Table 1 (diamond-chain Q_n, counting vs enumeration)
     snb       — §7.1 SNB IC table (hops × scale × semantics)
     appendixb — Appendix B table (Q_gs vs Q_acc vs SQL grouping sets)
     examples  — §6 worked examples (multiplicity checks, E4)
     ablation  — design-choice ablations (E5)
     micro     — Bechamel per-kernel estimates (one Test.make per table)

     fanout    — multi-source parallel fan-out speedup (E6)
     shard     — shard-count ablation, BSP supersteps (docs/SHARDING.md)
     compile   — interpreter vs install-time compiled plans (docs/COMPILER.md)

   Usage: main.exe [table1|snb|appendixb|examples|ablation|micro|fanout|shard|compile|all]
   Environment: DIAMOND_MAX_ENUM bounds the enumerated columns of table1
   (default 18; the paper ran to n=25 before timing out at 10 minutes);
   BENCH_JSON=<dir> additionally writes a BENCH_<suite>.json metrics sidecar
   per suite (schema: docs/OBSERVABILITY.md). *)

let usage () =
  prerr_endline "usage: main.exe [table1|snb|appendixb|examples|ablation|micro|fanout|shard|compile|all]";
  exit 2

let run_table1 () =
  let max_n_enum = Util.getenv_int "DIAMOND_MAX_ENUM" 18 in
  Table1.run ~max_n:(max 20 max_n_enum) ~max_n_enum

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  let suite name f = Util.with_sidecar name f in
  (match which with
   | "table1" -> suite "table1" run_table1
   | "snb" -> suite "snb" Snb_bench.run
   | "appendixb" -> suite "appendixb" Appendixb.run
   | "examples" -> suite "examples" Examples_tbl.run
   | "ablation" -> suite "ablation" Ablation.run
   | "micro" -> suite "micro" Micro.run
   | "fanout" -> suite "fanout" Fanout.run
   | "shard" -> suite "shard" Shard_ab.run
   (* compile writes its own richer sidecar (per-query speedups), so it
      does not go through Util.with_sidecar. *)
   | "compile" -> Compile_ab.run ()
   | "all" ->
     suite "examples" Examples_tbl.run;
     suite "table1" run_table1;
     suite "snb" Snb_bench.run;
     suite "appendixb" Appendixb.run;
     suite "ablation" Ablation.run;
     suite "micro" Micro.run;
     suite "fanout" Fanout.run;
     suite "shard" Shard_ab.run;
     Compile_ab.run ()
   | _ -> usage ());
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
