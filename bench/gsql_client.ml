(* Load driver for the installed-query service (docs/SERVICE.md).

   By default it self-hosts: spawns a server domain on a throwaway
   Unix-domain socket over the diamond-chain graph, installs a CountPaths
   query, then fans out client domains.  Point it at a live server instead
   with --connect (Unix socket path) or --tcp host:port — in that case the
   target must already have CountPaths installed (e.g. started with
   `gsql_run serve --graph diamond:12 --install ...`).

   Phases per self-hosted run:
     executed        — every request sets no_cache, so each one runs the
                       installed compiled plan on a worker domain (service
                       overhead + real execution under concurrency);
     executed-interp — same, with the engine toggled to the Gsql.Eval
                       tree-walker (Engine.set_interp): the
                       interpreter-vs-compiled ablation under service
                       concurrency (docs/COMPILER.md);
     cached          — same invocation without no_cache: after the first
                       miss the whole phase is result-cache hits (pure
                       service overhead).
   Against a remote server (--connect/--tcp) the ablation phase is
   skipped — the engine toggle is not a protocol operation.

   Reports throughput and p50/p95/p99 client-side latency per phase, plus
   the server's own cache counters and the governor line (cancellations /
   reclaimed / workers_leaked — CI greps it under fault injection).
   Knobs: --clients N (default 4), --requests N per client per phase
   (default 50), --workers N (self-host only), --timeout-ms MS per
   invocation (timed-out requests are counted, not fatal), --retries N
   (client-side retry on overloaded/transport errors).  BENCH_JSON=<dir>
   writes a BENCH_gsql_client.json sidecar in the same spirit as
   bench/main.ml's suites. *)

module V = Pgraph.Value
module P = Service.Protocol
module J = Obs.Json

let query_src = {|
CREATE QUERY CountPaths (string srcName, string tgtName) {
  SumAccum<int> @pathCount;
  R = SELECT t
      FROM  V:s -(E>*)- V:t
      WHERE s.name = srcName AND t.name = tgtName
      ACCUM t.@pathCount += 1;
  PRINT R[R.name, R.@pathCount];
}
|}

let diamond_n = 12

let params =
  [ ("srcName", V.Str "v0"); ("tgtName", V.Str ("v" ^ string_of_int diamond_n)) ]

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)

type target = Self_host | Connect of Service.Server.endpoint

let usage () =
  prerr_endline
    "usage: gsql_client [--connect SOCKET | --tcp HOST:PORT] [--clients N] \
     [--requests N] [--workers N] [--timeout-ms MS] [--retries N] \
     [--tenant NAME] [--tenants NAME:CLIENTS:WINDOW,...] \
     [--invoke QUERY [--param k=v]...] [--status]";
  exit 2

let target = ref Self_host
let clients = ref 4
let requests = ref 50
let workers = ref None
let timeout_ms = ref None
let retries = ref 0

(* --status: one status round-trip instead of a load run — prints the
   node's replication role line (CI's failover-smoke job greps it). *)
let status_only = ref false

(* --tenant stamps every invocation of the normal phases with one tenant
   identity; --tenants switches to the fairness mode: a comma-separated
   load mix of tenant groups, each NAME:CLIENTS:WINDOW — CLIENTS pipelined
   connections keeping WINDOW invocations in flight, all groups running
   concurrently against the same server.  Naming a group "flood" makes the
   tenant-flood fault knob (GSQL_FAULTS) hit exactly that group's
   executions, which is how CI builds a hostile-heavy + polite-light mix. *)
let tenant = ref None
let tenants_spec : (string * int * int) list ref = ref []

(* --invoke switches the driver from the two CountPaths phases to a single
   phase against an arbitrary installed query (CI drives mutating queries
   on a --data-dir server this way, then checks commits across a crash). *)
let invoke_query = ref None
let invoke_params : (string * V.t) list ref = ref []

let parse_typed_param s =
  match String.index_opt s '=' with
  | None -> usage ()
  | Some i ->
    let name = String.sub s 0 i in
    let raw = String.sub s (i + 1) (String.length s - i - 1) in
    let value =
      match int_of_string_opt raw with
      | Some n -> V.Int n
      | None ->
        (match float_of_string_opt raw with
         | Some f -> V.Float f
         | None ->
           (match raw with
            | "true" -> V.Bool true
            | "false" -> V.Bool false
            | _ -> V.Str raw))
    in
    (name, value)

let () =
  let rec parse = function
    | [] -> ()
    | "--connect" :: path :: rest ->
      target := Connect (`Unix path);
      parse rest
    | "--tcp" :: hp :: rest ->
      (match String.index_opt hp ':' with
       | Some i ->
         let host = String.sub hp 0 i in
         let port = int_of_string (String.sub hp (i + 1) (String.length hp - i - 1)) in
         target := Connect (`Tcp (host, port))
       | None -> usage ());
      parse rest
    | "--clients" :: n :: rest ->
      clients := int_of_string n;
      parse rest
    | "--requests" :: n :: rest ->
      requests := int_of_string n;
      parse rest
    | "--workers" :: n :: rest ->
      workers := Some (int_of_string n);
      parse rest
    | "--timeout-ms" :: n :: rest ->
      timeout_ms := Some (int_of_string n);
      parse rest
    | "--retries" :: n :: rest ->
      retries := int_of_string n;
      parse rest
    | "--status" :: rest ->
      status_only := true;
      parse rest
    | "--tenant" :: name :: rest ->
      tenant := Some name;
      parse rest
    | "--tenants" :: spec :: rest ->
      tenants_spec :=
        List.map
          (fun part ->
            match String.split_on_char ':' part with
            | [ name; c; w ] when name <> "" -> (name, int_of_string c, int_of_string w)
            | [ name; c ] when name <> "" -> (name, int_of_string c, 1)
            | _ -> usage ())
          (String.split_on_char ',' spec);
      parse rest
    | "--invoke" :: name :: rest ->
      invoke_query := Some name;
      parse rest
    | "--param" :: kv :: rest ->
      invoke_params := !invoke_params @ [ parse_typed_param kv ];
      parse rest
    | _ -> usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv)) with Failure _ -> usage ());
  if !clients < 1 || !requests < 1 then usage ();
  List.iter (fun (_, c, w) -> if c < 1 || w < 1 then usage ()) !tenants_spec

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))

type phase_stats = {
  ph_name : string;
  ph_total : int;
  ph_wall_s : float;
  ph_p50 : float;
  ph_p95 : float;
  ph_p99 : float;
  ph_cached : int;  (** responses that came back with [cached] set *)
  ph_timeouts : int;  (** timeout / resource_limit errors (governor fired) *)
  ph_errors : int;  (** any other protocol error *)
}

let throughput st = float_of_int st.ph_total /. st.ph_wall_s

(* One phase: [clients] domains, each opening its own connection and firing
   [requests] synchronous invocations.  Client-side latency per request.
   Errors are outcomes, not failures: under induced deadlines (--timeout-ms
   plus GSQL_FAULTS delays) a run is *supposed* to collect timeouts. *)
let run_phase ep ~name ~no_cache ~query ~params =
  let worker () =
    let c = Service.Client.connect ?recv_timeout_ms:None ep in
    Fun.protect
      ~finally:(fun () -> Service.Client.close c)
      (fun () ->
        let lat = Array.make !requests 0.0 in
        let cached = ref 0 and timeouts = ref 0 and errors = ref 0 in
        for i = 0 to !requests - 1 do
          let t0 = Unix.gettimeofday () in
          (match
             Service.Client.invoke c ?timeout_ms:!timeout_ms ?tenant:!tenant
               ~retries:!retries ~no_cache ~query ~params ()
           with
           | P.Result { rs_cached = true; _ } -> incr cached
           | P.Result _ -> ()
           | P.Error ((P.Timeout | P.Resource_limit), _, _) -> incr timeouts
           | P.Error (code, msg, _) ->
             incr errors;
             Printf.eprintf "request failed: %s: %s\n%!" (P.err_code_to_string code) msg
           | _ ->
             prerr_endline "unexpected response";
             exit 1);
          lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.0
        done;
        (lat, !cached, !timeouts, !errors))
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init !clients (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let lats = Array.concat (List.map (fun (l, _, _, _) -> l) results) in
  Array.sort compare lats;
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  { ph_name = name;
    ph_total = Array.length lats;
    ph_wall_s = wall;
    ph_p50 = percentile lats 50.0;
    ph_p95 = percentile lats 95.0;
    ph_p99 = percentile lats 99.0;
    ph_cached = sum (fun (_, c, _, _) -> c);
    ph_timeouts = sum (fun (_, _, t, _) -> t);
    ph_errors = sum (fun (_, _, _, e) -> e) }

(* ------------------------------------------------------------------ *)
(* Fairness mode (--tenants)                                           *)

type tenant_stats = {
  tn_name : string;
  tn_clients : int;
  tn_window : int;
  tn_ok : int;        (** successful results (latency sample set) *)
  tn_shed : int;      (** [overloaded] — global, per-tenant or inflight shed *)
  tn_quota : int;     (** [resource_limit] — quota denials / budget blows *)
  tn_timeouts : int;
  tn_errors : int;
  tn_wall_s : float;
  tn_p50 : float;
  tn_p95 : float;
  tn_p99 : float;
}

(* One pipelined connection: keep [window] invocations in flight via
   send/recv, correlate latency per id.  Percentiles are computed over
   successes only — a shed answer comes back in microseconds and would
   otherwise flatter the flooding tenant's latency. *)
let fairness_worker ep ~tenant ~window () =
  let c = Service.Client.connect ep in
  Fun.protect
    ~finally:(fun () -> Service.Client.close c)
    (fun () ->
      let n = !requests in
      let inflight = Hashtbl.create (2 * window) in
      let lats = ref [] in
      let ok = ref 0 and shed = ref 0 and quota = ref 0 in
      let timeouts = ref 0 and errors = ref 0 in
      let sent = ref 0 and recvd = ref 0 in
      let req =
        P.Invoke
          { P.iv_query = "CountPaths"; iv_params = params; iv_timeout_ms = !timeout_ms;
            iv_no_cache = true; iv_tenant = Some tenant }
      in
      while !recvd < n do
        while !sent < n && !sent - !recvd < window do
          let id = Service.Client.send c req in
          Hashtbl.replace inflight id (Unix.gettimeofday ());
          incr sent
        done;
        let id, resp = Service.Client.recv c in
        incr recvd;
        match Hashtbl.find_opt inflight id with
        | None -> ()
        | Some t0 ->
          Hashtbl.remove inflight id;
          let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          (match resp with
           | P.Result _ ->
             incr ok;
             lats := ms :: !lats
           | P.Error (P.Overloaded, _, _) -> incr shed
           | P.Error (P.Resource_limit, _, _) -> incr quota
           | P.Error (P.Timeout, _, _) -> incr timeouts
           | _ -> incr errors)
      done;
      (!lats, !ok, !shed, !quota, !timeouts, !errors))

(* Every group's domains are spawned before any join, so the mix runs
   concurrently: the flooding group is live while the light one measures. *)
let run_fairness ep =
  let t0 = Unix.gettimeofday () in
  let spawned =
    List.map
      (fun (name, nclients, window) ->
        ( name, nclients, window,
          List.init nclients (fun _ ->
              Domain.spawn (fairness_worker ep ~tenant:name ~window)) ))
      !tenants_spec
  in
  let stats =
    List.map
      (fun (name, nclients, window, doms) ->
        let rs = List.map Domain.join doms in
        let lats = Array.of_list (List.concat_map (fun (l, _, _, _, _, _) -> l) rs) in
        Array.sort compare lats;
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
        { tn_name = name; tn_clients = nclients; tn_window = window;
          tn_ok = sum (fun (_, o, _, _, _, _) -> o);
          tn_shed = sum (fun (_, _, s, _, _, _) -> s);
          tn_quota = sum (fun (_, _, _, q, _, _) -> q);
          tn_timeouts = sum (fun (_, _, _, _, t, _) -> t);
          tn_errors = sum (fun (_, _, _, _, _, e) -> e);
          tn_wall_s = 0.0;
          tn_p50 = percentile lats 50.0;
          tn_p95 = percentile lats 95.0;
          tn_p99 = percentile lats 99.0 })
      spawned
  in
  let wall = Unix.gettimeofday () -. t0 in
  List.map (fun st -> { st with tn_wall_s = wall }) stats

(* The greppable contract for CI's fairness-smoke job. *)
let print_fairness stats =
  Printf.printf "gsql_client fairness: %d requests/client, groups: %s\n" !requests
    (String.concat ","
       (List.map (fun (n, c, w) -> Printf.sprintf "%s:%d:%d" n c w) !tenants_spec));
  List.iter
    (fun st ->
      Printf.printf
        "fairness tenant %s: clients: %d window: %d ok: %d shed: %d quota_denials: %d \
         timeouts: %d errors: %d p50: %.3f p95: %.3f p99: %.3f\n"
        st.tn_name st.tn_clients st.tn_window st.tn_ok st.tn_shed st.tn_quota
        st.tn_timeouts st.tn_errors st.tn_p50 st.tn_p95 st.tn_p99)
    stats

let fairness_json st =
  J.Obj
    [ ("tenant", J.Str st.tn_name);
      ("clients", J.Int st.tn_clients);
      ("window", J.Int st.tn_window);
      ("ok", J.Int st.tn_ok);
      ("shed", J.Int st.tn_shed);
      ("quota_denials", J.Int st.tn_quota);
      ("timeouts", J.Int st.tn_timeouts);
      ("errors", J.Int st.tn_errors);
      ("wall_s", J.Float st.tn_wall_s);
      ("p50_ms", J.Float st.tn_p50);
      ("p95_ms", J.Float st.tn_p95);
      ("p99_ms", J.Float st.tn_p99) ]

let write_fairness_sidecar stats server_stats =
  match Sys.getenv_opt "BENCH_JSON" with
  | None -> ()
  | Some dir ->
    let doc =
      J.Obj
        [ ("suite", J.Str "gsql_client_fairness");
          ("requests_per_client", J.Int !requests);
          ("timeout_ms", (match !timeout_ms with Some t -> J.Int t | None -> J.Null));
          ("tenants", J.List (List.map fairness_json stats));
          ("server", server_stats) ]
    in
    let path = Filename.concat dir "BENCH_fairness.json" in
    let oc = open_out path in
    output_string oc (J.pretty doc);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "[sidecar] %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let print_table stats =
  let headers =
    [ "phase"; "requests"; "req/s"; "p50 ms"; "p95 ms"; "p99 ms"; "cached"; "timeouts";
      "errors" ]
  in
  let rows =
    List.map
      (fun st ->
        [ st.ph_name;
          string_of_int st.ph_total;
          Printf.sprintf "%.0f" (throughput st);
          Printf.sprintf "%.3f" st.ph_p50;
          Printf.sprintf "%.3f" st.ph_p95;
          Printf.sprintf "%.3f" st.ph_p99;
          string_of_int st.ph_cached;
          string_of_int st.ph_timeouts;
          string_of_int st.ph_errors ])
      stats
  in
  let all = headers :: rows in
  let widths =
    List.mapi
      (fun i _ -> List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all)
      headers
  in
  let render row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  Printf.printf "gsql_client: %d clients x %d requests/phase\n" !clients !requests;
  print_endline (render headers);
  print_endline (String.make (String.length (render headers)) '-');
  List.iter (fun row -> print_endline (render row)) rows

let phase_json st =
  J.Obj
    [ ("phase", J.Str st.ph_name);
      ("requests", J.Int st.ph_total);
      ("wall_s", J.Float st.ph_wall_s);
      ("throughput_rps", J.Float (throughput st));
      ("p50_ms", J.Float st.ph_p50);
      ("p95_ms", J.Float st.ph_p95);
      ("p99_ms", J.Float st.ph_p99);
      ("cached", J.Int st.ph_cached);
      ("timeouts", J.Int st.ph_timeouts);
      ("errors", J.Int st.ph_errors) ]

let write_sidecar stats server_stats =
  match Sys.getenv_opt "BENCH_JSON" with
  | None -> ()
  | Some dir ->
    let doc =
      J.Obj
        [ ("suite", J.Str "gsql_client");
          ("clients", J.Int !clients);
          ("requests_per_client", J.Int !requests);
          ("timeout_ms", (match !timeout_ms with Some t -> J.Int t | None -> J.Null));
          ("retries", J.Int !retries);
          ("phases", J.List (List.map phase_json stats));
          ("server", server_stats) ]
    in
    let path = Filename.concat dir "BENCH_gsql_client.json" in
    let oc = open_out path in
    output_string oc (J.pretty doc);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "[sidecar] %s\n%!" path

(* ------------------------------------------------------------------ *)

let stats_int fields k =
  match List.assoc_opt k fields with Some (J.Int n) -> Some n | _ -> None

(* Fetch the server stats, waiting (bounded) for every cancelled worker to
   be reclaimed so the governor line is deterministic: right after a
   timeout a worker may still be unwinding to its next checkpoint. *)
let fetch_server_stats ep =
  let fetch () =
    let c = Service.Client.connect ep in
    Fun.protect
      ~finally:(fun () -> Service.Client.close c)
      (fun () -> match Service.Client.stats c with P.Stats_snapshot j -> j | _ -> J.Null)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let j = fetch () in
    let leaked =
      match j with J.Obj fields -> stats_int fields "workers_leaked" | _ -> None
    in
    match leaked with
    | Some n when n > 0 && Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.05;
      settle ()
    | _ -> j
  in
  settle ()

(* The greppable contract for CI's failover-smoke job. *)
let print_status ep =
  let c = Service.Client.connect ep in
  Fun.protect
    ~finally:(fun () -> Service.Client.close c)
    (fun () ->
      match Service.Client.status c with
      | P.Status st ->
        Printf.printf
          "server status: role: %s epoch: %d version: %d read_only: %s lag_ms: %s \
           leader: %s replicas: %d\n"
          st.P.st_role st.P.st_epoch st.P.st_version
          (Option.value ~default:"no" st.P.st_read_only)
          (match st.P.st_lag_ms with
           | Some ms -> Printf.sprintf "%.0f" ms
           | None -> "-")
          (Option.value ~default:"-" st.P.st_leader)
          st.P.st_replicas
      | P.Error (code, msg, _) ->
        Printf.eprintf "status failed: %s: %s\n" (P.err_code_to_string code) msg;
        exit 1
      | _ ->
        prerr_endline "unexpected status response";
        exit 1)

let () =
  (match (!status_only, !target) with
   | true, Connect ep ->
     print_status ep;
     exit 0
   | true, Self_host ->
     prerr_endline "--status needs --connect or --tcp";
     exit 2
   | false, _ -> ());
  let self_hosted, engine_opt, ep =
    match !target with
    | Connect ep -> (None, None, ep)
    | Self_host ->
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "gsql_client_%d.sock" (Unix.getpid ()))
      in
      let graph = (Pathsem.Toygraphs.diamond_chain diamond_n).Pathsem.Toygraphs.g in
      let engine = Service.Engine.create ~graph () in
      (match Service.Engine.install engine query_src with
       | P.Installed _ -> ()
       | P.Error (_, msg, _) ->
         Printf.eprintf "install failed: %s\n" msg;
         exit 1
       | _ ->
         prerr_endline "install failed";
         exit 1);
      let cfg =
        { (Service.Server.default_config (`Unix path)) with
          Service.Server.workers = !workers }
      in
      let server = Service.Server.create cfg engine in
      let runner = Domain.spawn (fun () -> Service.Server.run server) in
      (Some (server, runner, path), Some engine, `Unix path)
  in
  Fun.protect
    ~finally:(fun () ->
      match self_hosted with
      | None -> ()
      | Some (server, runner, path) ->
        Service.Server.stop server;
        Domain.join runner;
        if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Warm the connection path once so listen backlog jitter stays out of
         the measured phases. *)
      let c = Service.Client.connect ep in
      (match Service.Client.ping c with
       | P.Pong -> ()
       | _ ->
         prerr_endline "server did not answer ping";
         exit 1);
      Service.Client.close c;
      if !tenants_spec <> [] then begin
        let fstats = run_fairness ep in
        print_fairness fstats;
        let server_stats = fetch_server_stats ep in
        (match server_stats with
         | J.Obj fields ->
           let geti k = Option.value ~default:0 (stats_int fields k) in
           Printf.printf
             "server governor: cancellations: %d reclaimed: %d workers_leaked: %d \
              timeouts: %d\n"
             (geti "cancellations") (geti "reclaimed") (geti "workers_leaked")
             (geti "timeouts");
           Printf.printf "server shed: overloaded: %d inflight_shed: %d quota_denials: %d\n"
             (geti "overloaded") (geti "inflight_shed") (geti "quota_denials")
         | _ -> ());
        write_fairness_sidecar fstats server_stats
      end
      else begin
      let stats =
        match !invoke_query with
        | Some query ->
          [ run_phase ep ~name:("invoke:" ^ query) ~no_cache:false ~query
              ~params:!invoke_params ]
        | None ->
          let executed =
            run_phase ep ~name:"executed" ~no_cache:true ~query:"CountPaths" ~params
          in
          (* The ablation toggle is engine-level, not a protocol op: only
             meaningful when we hold the engine (self-hosted).  No phase
             runs while it flips, so workers never see a torn setting. *)
          let interp =
            match engine_opt with
            | None -> []
            | Some engine ->
              let was = Service.Engine.use_interp engine in
              Service.Engine.set_interp engine true;
              let st =
                run_phase ep ~name:"executed-interp" ~no_cache:true ~query:"CountPaths"
                  ~params
              in
              Service.Engine.set_interp engine was;
              [ st ]
          in
          (executed :: interp)
          @ [ run_phase ep ~name:"cached" ~no_cache:false ~query:"CountPaths" ~params ]
      in
      print_table stats;
      (match
         ( List.find_opt (fun st -> st.ph_name = "executed") stats,
           List.find_opt (fun st -> st.ph_name = "executed-interp") stats )
       with
       | Some c, Some i when c.ph_p50 > 0.0 ->
         Printf.printf "ablation: interp p50 %.3fms vs compiled p50 %.3fms (%.2fx)\n"
           i.ph_p50 c.ph_p50 (i.ph_p50 /. c.ph_p50)
       | _ -> ());
      (* CI parses this under --invoke: successful responses == commits for
         a mutating query on a healthy server. *)
      List.iter
        (fun st ->
          Printf.printf "phase %s: ok: %d timeouts: %d errors: %d\n" st.ph_name
            (st.ph_total - st.ph_timeouts - st.ph_errors)
            st.ph_timeouts st.ph_errors)
        stats;
      let server_stats = fetch_server_stats ep in
      (match server_stats with
       | J.Obj fields ->
         (match List.assoc_opt "cache" fields with
          | Some (J.Obj cf) ->
            let geti k = Option.value ~default:0 (stats_int cf k) in
            Printf.printf "server cache: %d hits / %d misses\n" (geti "hits") (geti "misses")
          | _ -> ());
         let geti k = Option.value ~default:0 (stats_int fields k) in
         (* The governor line CI greps under fault injection. *)
         Printf.printf
           "server governor: cancellations: %d reclaimed: %d workers_leaked: %d timeouts: %d\n"
           (geti "cancellations") (geti "reclaimed") (geti "workers_leaked") (geti "timeouts");
         (* The mvcc line CI compares across a kill -9 + restart. *)
         Printf.printf "server mvcc: graph_version: %d commits: %d read_only: %s\n"
           (geti "graph_version") (geti "commits")
           (match List.assoc_opt "read_only" fields with
            | Some (J.Bool false) | None -> "no"
            | _ -> "yes")
       | _ -> ());
      write_sidecar stats server_stats
      end)
