(* Kill-the-leader chaos harness (docs/DURABILITY.md, CI failover-smoke).

   Drives two real `gsql_run serve` processes — a synchronous leader
   (--sync-replicas 1) and a read replica (--replica-of) — through the
   failure sequence the replication layer exists for:

     1. mutating load of uniquely-named INSERTs against the leader, every
        acknowledged commit recorded client-side;
     2. kill -9 the leader mid-load (the in-flight write becomes
        {e indeterminate}: no response was received, so it may appear
        0 or 1 times — never more);
     3. promote the follower (epoch 2) and verify {b zero acknowledged
        commits lost, zero duplicated} by counting each name on the new
        leader;
     4. client failover: a ring of [dead leader; follower] endpoints must
        land post-promotion writes on the survivor via retry/rotation;
     5. restart the old leader from its data dir: with --sync-replicas 1
        and no followers its "poison" write answers [repl_lag] (the
        no-quorum fence — the commit stands locally, unacknowledged);
     6. a Subscribe carrying epoch 2 fences it; a write now answers
        [fenced] — any success here is a split-brain double-write;
     7. re-point it at the new leader (Follow): its divergent tail,
        poison included, is discarded by the snapshot bootstrap, and the
        converged replica must again hold every acked name exactly once.

   Prints a greppable verdict line and exits non-zero on any violation:

     chaos: acked: N lost: 0 duplicated: 0 split_brain_writes: 0

   Usage: chaos [--server PATH] [--writes N] [--dir DIR] [--keep] *)

module P = Service.Protocol
module C = Service.Client
module V = Pgraph.Value

let addv_src = {|
CREATE QUERY AddV (string nm) {
  INSERT INTO V (name) VALUES (nm);
}
|}

(* Zero-step pattern: every vertex matches itself, so |R| is the number of
   vertices carrying the name — 1 for an exactly-once write, 2+ for a
   duplicated one. *)
let countname_src = {|
CREATE QUERY CountName (string nm) {
  R = SELECT v FROM V:v -(E>*0..0)- V:w WHERE v.name = nm;
  PRINT R[R.name];
}
|}

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)

let server = ref "_build/default/bin/gsql_run.exe"
let writes = ref 20
let base_dir = ref None
let keep = ref false

let usage () =
  prerr_endline "usage: chaos [--server PATH] [--writes N] [--dir DIR] [--keep]";
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "--server" :: path :: rest -> server := path; parse rest
    | "--writes" :: n :: rest -> writes := int_of_string n; parse rest
    | "--dir" :: d :: rest -> base_dir := Some d; parse rest
    | "--keep" :: rest -> keep := true; parse rest
    | _ -> usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv)) with Failure _ -> usage ());
  if !writes < 1 then usage ()

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "chaos: FAIL: %s\n%!" msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Process control                                                     *)

let spawn_server ~sock ~data ~log extra =
  let argv =
    [ !server; "serve"; "--graph"; "diamond:6"; "--socket"; sock;
      "--data-dir"; data; "--install"; Filename.concat data "addv.gsql";
      "--install"; Filename.concat data "countname.gsql" ]
    @ extra
  in
  let logfd = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process !server (Array.of_list argv) Unix.stdin logfd logfd
  in
  Unix.close logfd;
  pid

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())

let term pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())

(* Poll until the server answers a ping (bounded). *)
let wait_ready sock =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match
      let c = C.connect (`Unix sock) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () -> C.ping c)
    with
    | P.Pong -> ()
    | _ | (exception _) ->
      if Unix.gettimeofday () > deadline then begin
        fail "server on %s did not come up" sock;
        exit 1
      end;
      Unix.sleepf 0.1;
      go ()
  in
  go ()

let status_of sock =
  let c = C.connect (`Unix sock) in
  Fun.protect
    ~finally:(fun () -> C.close c)
    (fun () ->
      match C.status c with
      | P.Status st -> st
      | _ -> failwith "status: unexpected response")

(* Poll until [pred status] holds (bounded) — e.g. the leader sees its
   subscriber, or the rejoined follower has converged to a version. *)
let wait_status sock ~what pred =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match (try Some (status_of sock) with _ -> None) with
    | Some st when pred st -> st
    | _ ->
      if Unix.gettimeofday () > deadline then begin
        fail "timed out waiting for %s on %s" what sock;
        exit 1
      end;
      Unix.sleepf 0.1;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Write / verify primitives                                           *)

type outcome = Acked | Refused of P.err_code | Indeterminate

(* One write, no client-side retry: an error response means the name is
   definitely uncommitted-or-refused and may be reused; a transport break
   means we cannot know, so the name is abandoned as indeterminate. *)
let write_once c name =
  match
    C.invoke c ~retries:0 ~query:"AddV" ~params:[ ("nm", V.Str name) ] ()
  with
  | P.Result _ -> Acked
  | P.Error (code, _, _) -> Refused code
  | _ -> Refused P.Internal
  | exception _ -> Indeterminate

let count_name c name =
  match
    C.invoke c ~retries:2 ~query:"CountName" ~params:[ ("nm", V.Str name) ]
      ~no_cache:true ()
  with
  | P.Result { rs_result = { P.x_vsets; _ }; _ } ->
    (match List.assoc_opt "R" x_vsets with
     | Some ids -> Array.length ids
     | None -> 0)
  | P.Error (code, msg, _) ->
    fail "count %s: %s: %s" name (P.err_code_to_string code) msg;
    -1
  | _ ->
    fail "count %s: unexpected response" name;
    -1

(* Every acked name exactly once; indeterminate names at most once. *)
let verify_names ~where c ~acked ~indet =
  let lost = ref 0 and dup = ref 0 in
  List.iter
    (fun name ->
      match count_name c name with
      | 0 -> incr lost; fail "%s: acked %s absent" where name
      | 1 -> ()
      | n when n > 1 -> incr dup; fail "%s: acked %s appears %d times" where name n
      | _ -> incr lost)
    acked;
  List.iter
    (fun name ->
      let n = count_name c name in
      if n > 1 then begin
        incr dup;
        fail "%s: indeterminate %s appears %d times" where name n
      end)
    indet;
  (!lost, !dup)

(* ------------------------------------------------------------------ *)

let () =
  let dir =
    match !base_dir with
    | Some d -> d
    | None ->
      let d = Filename.temp_file "chaos" "" in
      Sys.remove d;
      Unix.mkdir d 0o755;
      d
  in
  let ldata = Filename.concat dir "leader" in
  let fdata = Filename.concat dir "follower" in
  Unix.mkdir ldata 0o755;
  Unix.mkdir fdata 0o755;
  List.iter
    (fun d ->
      let put name src =
        let oc = open_out (Filename.concat d name) in
        output_string oc src;
        close_out oc
      in
      put "addv.gsql" addv_src;
      put "countname.gsql" countname_src)
    [ ldata; fdata ];
  let lsock = Filename.concat dir "leader.sock" in
  let fsock = Filename.concat dir "follower.sock" in

  Printf.printf "chaos: dir: %s\n%!" dir;

  (* 1. Leader (synchronous: 1 follower ack per commit) + follower. *)
  let leader =
    spawn_server ~sock:lsock ~data:ldata ~log:(Filename.concat dir "leader1.log")
      [ "--sync-replicas"; "1"; "--sync-timeout-ms"; "2000" ]
  in
  wait_ready lsock;
  let follower =
    spawn_server ~sock:fsock ~data:fdata
      ~log:(Filename.concat dir "follower.log")
      [ "--replica-of"; "unix:" ^ lsock ]
  in
  wait_ready fsock;
  ignore (wait_status lsock ~what:"subscriber" (fun st -> st.P.st_replicas >= 1));
  ignore
    (wait_status fsock ~what:"follower role" (fun st -> st.P.st_role = "follower"));

  (* 2. Mutating load; a killer domain fires kill -9 partway through, so
     the tail of the loop exercises the transport-break path. *)
  let acked = ref [] and indet = ref [] in
  let record name = function
    | Acked -> acked := name :: !acked
    | Refused _ -> ()
    | Indeterminate -> indet := name :: !indet
  in
  let c = C.connect (`Unix lsock) in
  for i = 1 to !writes do
    let name = Printf.sprintf "w_%04d" i in
    record name (write_once c name)
  done;
  if List.length !acked < !writes then
    fail "healthy-phase writes: %d/%d acked" (List.length !acked) !writes;
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        kill9 leader)
  in
  (* Write until the leader's death surfaces (error response, quorum miss
     or transport break) — bounded so a too-graceful death cannot hang. *)
  let broke = ref false in
  let i = ref 0 in
  while (not !broke) && !i < 10_000 do
    incr i;
    let name = Printf.sprintf "k_%04d" !i in
    (match write_once c name with
     | Acked -> acked := name :: !acked
     | Refused _ -> broke := true
     | Indeterminate ->
       indet := name :: !indet;
       broke := true)
  done;
  Domain.join killer;
  (try C.close c with _ -> ());
  Printf.printf "chaos: load: acked: %d indeterminate: %d\n%!"
    (List.length !acked) (List.length !indet);

  (* 3. Promote the follower. *)
  let pc = C.connect (`Unix fsock) in
  let pm_epoch, pm_version =
    let _ = C.send pc P.Promote in
    match snd (C.recv pc) with
    | P.Promoted { pm_epoch; pm_version } -> (pm_epoch, pm_version)
    | resp ->
      fail "promote: unexpected response";
      ignore resp;
      (0, 0)
  in
  C.close pc;
  Printf.printf "chaos: promoted epoch: %d version: %d\n%!" pm_epoch pm_version;
  if pm_epoch < 2 then fail "promotion did not raise the epoch (got %d)" pm_epoch;

  (* 4. Client failover: the ring starts at the dead leader; rotation on
     connection-refused must land both reads and writes on the survivor. *)
  let fc = C.connect_any [ `Unix lsock; `Unix fsock ] in
  let post = List.init 5 (fun i -> Printf.sprintf "p_%04d" (i + 1)) in
  List.iter
    (fun name ->
      match
        C.invoke fc ~retries:3 ~query:"AddV" ~params:[ ("nm", V.Str name) ] ()
      with
      | P.Result _ -> acked := name :: !acked
      | P.Error (code, msg, _) ->
        fail "post-promotion write %s: %s: %s" name (P.err_code_to_string code) msg
      | _ -> fail "post-promotion write %s: unexpected response" name
      | exception e ->
        fail "post-promotion write %s: %s" name (Printexc.to_string e))
    post;
  if C.endpoint fc <> `Unix fsock then fail "client did not fail over to the survivor";

  (* Zero acked commits lost, zero duplicated, on the promoted leader. *)
  let lost_f, dup_f = verify_names ~where:"promoted" fc ~acked:!acked ~indet:!indet in
  Printf.printf "chaos: verify promoted: lost: %d duplicated: %d\n%!" lost_f dup_f;

  (* 5. Restart the old leader from its data dir.  Synchronous with zero
     followers: the poison write must answer repl_lag (it stands locally
     but is never acknowledged), not succeed silently. *)
  (try Sys.remove lsock with Sys_error _ -> ());
  let leader2 =
    spawn_server ~sock:lsock ~data:ldata ~log:(Filename.concat dir "leader2.log")
      [ "--sync-replicas"; "1"; "--sync-timeout-ms"; "500" ]
  in
  wait_ready lsock;
  let split_brain = ref 0 in
  let lc = C.connect (`Unix lsock) in
  (match write_once lc "poison" with
   | Refused P.Repl_lag -> print_endline "chaos: stale leader write: repl_lag (quorum fence)"
   | Acked ->
     incr split_brain;
     fail "stale leader acknowledged a write with no follower quorum"
   | Refused code ->
     fail "stale leader write: expected repl_lag, got %s" (P.err_code_to_string code)
   | Indeterminate -> fail "stale leader write: transport break");

  (* 6. Epoch fencing: a subscribe carrying the new epoch stands it down;
     a write now gets a hard [fenced] refusal. *)
  (let sc = C.connect (`Unix lsock) in
   let _ = C.send sc (P.Subscribe { sub_version = 0; sub_epoch = pm_epoch }) in
   (match snd (C.recv sc) with
    | P.Error (P.Fenced, _, _) -> ()
    | _ -> fail "higher-epoch subscribe was not refused as fenced");
   (try C.close sc with _ -> ()));
  (match write_once lc "poison2" with
   | Refused P.Fenced -> print_endline "chaos: fenced write refused"
   | Acked ->
     incr split_brain;
     fail "fenced leader acknowledged a write"
   | Refused code ->
     fail "fenced write: expected fenced, got %s" (P.err_code_to_string code)
   | Indeterminate -> fail "fenced write: transport break");

  (* 7. Re-point it at the new leader: the snapshot bootstrap discards the
     divergent tail (poison included) and converges. *)
  (let _ = C.send lc (P.Follow ("unix:" ^ fsock)) in
   match snd (C.recv lc) with
   | P.Following _ -> ()
   | _ -> fail "follow order refused");
  C.close lc;
  let target_version = (status_of fsock).P.st_version in
  ignore
    (wait_status lsock ~what:"rejoin convergence" (fun st ->
         st.P.st_role = "follower" && st.P.st_epoch = pm_epoch
         && st.P.st_version >= target_version));
  let rc = C.connect (`Unix lsock) in
  let lost_r, dup_r = verify_names ~where:"rejoined" rc ~acked:!acked ~indet:!indet in
  let poison = count_name rc "poison" + count_name rc "poison2" in
  if poison > 0 then begin
    incr split_brain;
    fail "poison writes survived the snapshot re-bootstrap (%d)" poison
  end;
  Printf.printf "chaos: verify rejoined: lost: %d duplicated: %d poison: %d\n%!"
    lost_r dup_r poison;
  C.close rc;

  term leader2;
  term follower;

  (* The greppable verdict contract for CI's failover-smoke job. *)
  Printf.printf "chaos: acked: %d lost: %d duplicated: %d split_brain_writes: %d\n%!"
    (List.length !acked) (lost_f + lost_r) (dup_f + dup_r) !split_brain;
  if (not !keep) && !failures = 0 then
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  if !failures > 0 then begin
    Printf.eprintf "chaos: %d failure(s); artifacts kept in %s\n%!" !failures dir;
    exit 1
  end
