(* Experiment E1 — paper §7.1, Table 1.

   Diamond-chain graph (Figure 7), queries Q_n counting the 2^n paths from
   v0 to v_n under DARPE E>*.  Three engines:

   - "TigerGraph / GSQL (count)": the full Q_n GSQL query through the
     interpreter, evaluated by shortest-path *counting* (polynomial — the
     paper reports all queries completing within 10 ms);
   - "Neo4j nre (enumerate)": non-repeated-edge semantics by materializing
     every legal path (doubles per +1 n, Table 1 column 3);
   - "Neo4j asp (enumerate)": all-shortest-paths evaluated by enumeration
     (doubles too and is slower than nre per path, Table 1 column 4 — the
     paper's surprising finding that Neo4j's ASP mode is even worse).

   Expected shape: counting flat in n; both enumerators exponential; the
   enumerated-ASP curve above the NRE curve. *)

module B = Pgraph.Bignat
module Sem = Pathsem.Semantics

(* Each n's median counting time, for the BENCH_table1.json sidecar — CI's
   bench-smoke job compares this histogram's mean against the committed
   baseline (bench/bench_check.ml).  The interpreter-only histogram keeps
   its name so committed baselines stay comparable; the compiled-plan
   column (docs/COMPILER.md ablation) records separately. *)
let h_count_asp = Obs.Metrics.histogram "bench.table1.count_asp_ms"
let h_count_asp_compiled = Obs.Metrics.histogram "bench.table1.count_asp_compiled_ms"

let qn_source = {|
  SumAccum<int> @pathCount;
  R = SELECT t
      FROM  V:s -(E>*)- V:t
      WHERE s.name = srcName AND t.name = tgtName
      ACCUM t.@pathCount += 1;
  PRINT R[R.name, R.@pathCount];
|}

let qn_params n =
  [ ("srcName", Pgraph.Value.Str "v0");
    ("tgtName", Pgraph.Value.Str (Printf.sprintf "v%d" n)) ]

let qn_count (result : Gsql.Eval.result) =
  match result.Gsql.Eval.r_tables with
  | (_, t) :: _ ->
    (match t.Gsql.Table.rows with
     | [ [| _; Pgraph.Value.Int c |] ] -> B.of_int c
     | _ -> failwith "table1: unexpected Qn result")
  | [] -> failwith "table1: Qn printed no table"

let run_gsql_count g n = qn_count (Gsql.Eval.run_source g ~params:(qn_params n) qn_source)

let run_gsql_count_compiled plan g n =
  qn_count (Gsql.Compile.run plan ~params:(qn_params n) g)

let run ~max_n ~max_n_enum =
  let { Pathsem.Toygraphs.g; vertex } = Pathsem.Toygraphs.diamond_chain max_n in
  let v0 = vertex "v0" in
  let ast = Darpe.Parse.parse "E>*" in
  Printf.printf
    "Diamond chain: %d diamonds, %d vertices, %d edges (paper: 30 diamonds, 91 vertices, 120 \
     edges at n=30)\n"
    max_n (Pgraph.Graph.n_vertices g) (Pgraph.Graph.n_edges g);
  (* Install-time compilation happens once, outside the timed loop — the
     per-invoke columns below are cached-miss invoke latency only. *)
  let plan =
    Gsql.Compile.compile_block ~schema:(Pgraph.Graph.schema g)
      (Gsql.Parser.parse_block qn_source)
  in
  let rows = ref [] in
  for n = 1 to max_n do
    let vn = vertex (Printf.sprintf "v%d" n) in
    let expected = B.pow2 n in
    let count_result = ref B.zero in
    let t_count = Util.median_ms ~runs:3 (fun () -> count_result := run_gsql_count g n) in
    assert (B.equal !count_result expected);
    Obs.Metrics.observe h_count_asp t_count;
    let t_compiled =
      Util.median_ms ~runs:3 (fun () -> count_result := run_gsql_count_compiled plan g n)
    in
    assert (B.equal !count_result expected);
    Obs.Metrics.observe h_count_asp_compiled t_compiled;
    let enum_cell sem =
      if n <= max_n_enum then begin
        let r = ref B.zero in
        let t =
          Util.median_ms ~runs:(if n <= 14 then 3 else 1) (fun () ->
              r := Pathsem.Engine.count_single_pair g ast sem ~src:v0 ~dst:vn)
        in
        assert (B.equal !r expected);
        Util.ms_to_string t
      end
      else "-"
    in
    let nre = enum_cell Sem.Non_repeated_edge in
    let asp = enum_cell Sem.Shortest_enumerated in
    rows :=
      [ string_of_int n; B.to_string expected; Util.ms_to_string t_count;
        Util.ms_to_string t_compiled; nre; asp ]
      :: !rows
  done;
  Util.print_table ~title:"Table 1 — Q_n on the diamond chain (paper §7.1)"
    [ "n"; "path count"; "GSQL count (ASP)"; "GSQL compiled";
      "enum NRE (\"Neo4j nre\")"; "enum ASP (\"Neo4j asp\")" ]
    (List.rev !rows);
  print_endline
    "\nShape check: counting stays flat; both enumeration columns double per +1 n\n\
     (the paper's Table 1 shows the same doubling from n=8 onwards, timing out at n>=25/22).";

  (* Growth-rate summary over the last measured enumeration points. *)
  let ratio sem n =
    let t1 =
      Util.median_ms ~runs:1 (fun () ->
          ignore
            (Pathsem.Engine.count_single_pair g ast sem ~src:v0
               ~dst:(vertex (Printf.sprintf "v%d" n))))
    in
    let t2 =
      Util.median_ms ~runs:1 (fun () ->
          ignore
            (Pathsem.Engine.count_single_pair g ast sem ~src:v0
               ~dst:(vertex (Printf.sprintf "v%d" (n + 2)))))
    in
    sqrt (t2 /. t1)
  in
  let n0 = max 10 (max_n_enum - 4) in
  Printf.printf "\nPer-step growth factor near n=%d:  enum-NRE ~ %.2fx, enum-ASP ~ %.2fx (expected ~2x)\n"
    n0
    (ratio Sem.Non_repeated_edge n0)
    (ratio Sem.Shortest_enumerated n0)
