(* Shared timing and rendering helpers for the benchmark harness. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.0)

(* Median wall-clock of [n] runs — the paper's Appendix B methodology
   ("for each graph, we ran each query 5 times, computing the median"). *)
let median_ms ?(runs = 5) f =
  let times =
    List.init runs (fun _ ->
        let _, ms = time_once f in
        ms)
  in
  let sorted = List.sort compare times in
  List.nth sorted (runs / 2)

let ms_to_string ms =
  if ms < 1.0 then Printf.sprintf "%.3fms"
      ms
  else if ms < 1000.0 then Printf.sprintf "%.1fms" ms
  else if ms < 60_000.0 then Printf.sprintf "%.2fs" (ms /. 1000.0)
  else Printf.sprintf "%dm%02ds" (int_of_float ms / 60000) (int_of_float ms mod 60000 / 1000)

let print_rule width = print_endline (String.make width '-')

let print_table ~title headers rows =
  Printf.printf "\n== %s ==\n" title;
  let all = headers :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) headers)
      all
  in
  let render row =
    String.concat "  "
      (List.map2 (fun w cell -> cell ^ String.make (w - String.length cell) ' ') widths row)
  in
  print_endline (render headers);
  print_rule (String.length (render headers));
  List.iter (fun row -> print_endline (render row)) rows

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string s with Failure _ -> default)
  | None -> default

let getenv_flag name = Sys.getenv_opt name <> None

(* Machine-readable sidecars: when BENCH_JSON names a directory, each suite
   runs with the metrics registry on and writes BENCH_<suite>.json there —
   wall time plus the Obs.Metrics dump (merge ops, BFS hops, product-state
   expansions, ...), so runs can be diffed across commits without scraping
   the human-readable tables. *)
let with_sidecar name f =
  match Sys.getenv_opt "BENCH_JSON" with
  | None -> f ()
  | Some dir ->
    let was_enabled = Obs.Metrics.enabled () in
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    let result, ms =
      time_once (fun () ->
          Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled) f)
    in
    let doc =
      Obs.Json.Obj
        [ ("suite", Obs.Json.Str name);
          ("wall_ms", Obs.Json.Float ms);
          ("metrics", Obs.Metrics.dump ()) ]
    in
    let path = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
    let oc = open_out path in
    output_string oc (Obs.Json.pretty doc);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "[sidecar] %s\n%!" path;
    result
