(* Sidecar regression gate — compares a current BENCH_<suite>.json against
   a committed baseline and fails (exit 1) when a watched histogram's mean
   regresses beyond an allowed ratio.

   Usage:
     bench_check.exe <baseline.json> <current.json> [metric] [max-ratio]

   [metric] defaults to [bench.table1.count_asp_ms] (the Table 1 counting
   column — the paper's headline "counting stays flat" claim), [max-ratio]
   to 2.0: CI's bench-smoke job runs table1 at small n and refuses a
   count-ASP that got more than twice as slow as the committed baseline.
   Absolute wall times differ across machines; a 2x guard band on the same
   runner class still catches accidental algorithmic regressions (the
   failure mode this gate exists for: someone reintroducing a per-call
   adjacency copy or losing the CSR memo). *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_check: " ^ s); exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Obs.Json.parse s with
  | Ok j -> j
  | Error e -> die "%s: %s" path e

let hist_mean path doc metric =
  let ( >>= ) o f = Option.bind o f in
  match
    Obs.Json.member "metrics" doc
    >>= Obs.Json.member "histograms"
    >>= Obs.Json.member metric
    >>= Obs.Json.member "mean"
    >>= Obs.Json.to_float_opt
  with
  | Some m when m > 0.0 -> m
  | Some _ | None -> die "%s: no positive histogram mean for %s" path metric

let wall_ms doc =
  match Option.bind (Obs.Json.member "wall_ms" doc) Obs.Json.to_float_opt with
  | Some w -> w
  | None -> nan

let () =
  let argv = Sys.argv in
  if Array.length argv < 3 || Array.length argv > 5 then
    die "usage: bench_check.exe <baseline.json> <current.json> [metric] [max-ratio]";
  let metric = if Array.length argv > 3 then argv.(3) else "bench.table1.count_asp_ms" in
  let max_ratio =
    if Array.length argv > 4 then
      try float_of_string argv.(4) with Failure _ -> die "bad max-ratio %s" argv.(4)
    else 2.0
  in
  let base = load argv.(1) and cur = load argv.(2) in
  let b = hist_mean argv.(1) base metric and c = hist_mean argv.(2) cur metric in
  let ratio = c /. b in
  Printf.printf "%s: baseline %.3fms, current %.3fms, ratio %.2fx (limit %.2fx)\n" metric b c
    ratio max_ratio;
  Printf.printf "wall_ms: baseline %.1f, current %.1f\n" (wall_ms base) (wall_ms cur);
  if ratio > max_ratio then begin
    Printf.printf "FAIL: %s regressed %.2fx > %.2fx\n" metric ratio max_ratio;
    exit 1
  end;
  print_endline "OK"
