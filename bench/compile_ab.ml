(* Interpreter-vs-compiled ablation (docs/COMPILER.md, docs/PERFORMANCE.md).

   Runs the shipped parameterized queries (khop, common_friends) over an
   SNB graph through both execution paths — the Eval tree-walker and the
   install-time closure plan — on a single thread, comparing cached-miss
   invoke latency.  Both paths must return byte-identical results (the
   interpreter is the compiler's differential-testing oracle); the bench
   aborts on any divergence before it prints a number.

   Environment:
     COMPILE_SF    SNB scale factor (default 0.1)
     COMPILE_RUNS  runs per median (default 5)
     BENCH_JSON    directory for the BENCH_compile.json sidecar, with
                   per-query interp_ms / compiled_ms / speedup /
                   compile_ms / plan_ops
     COMPILE_GATE  when set, exit 1 if the compiled path is slower than
                   the interpreter on any query (CI bench-smoke gate) *)

module V = Pgraph.Value
module G = Pgraph.Graph
module J = Obs.Json

type case = {
  c_file : string;
  c_params : (string * V.t) list;
}

let cases =
  [ { c_file = "khop.gsql";
      c_params = [ ("firstName", V.Str "Jan"); ("hops", V.Int 2) ] };
    { c_file = "common_friends.gsql";
      c_params = [ ("nameA", V.Str "Jan"); ("nameB", V.Str "Maria") ] } ]

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with Failure _ -> default)
  | None -> default

let queries_dir () =
  List.find Sys.file_exists [ "queries"; "../queries" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Strong structural fingerprint: PRINT output, every table rendered, and
   vertex-set sizes.  Row order is part of the compiled path's contract. *)
let fingerprint (r : Gsql.Eval.result) =
  String.concat "\x00"
    (r.Gsql.Eval.r_printed
     :: List.map
          (fun (name, tbl) -> name ^ "=" ^ Gsql.Table.to_string tbl)
          r.Gsql.Eval.r_tables
    @ List.map
        (fun (name, vs) -> Printf.sprintf "%s:#%d" name (Array.length vs))
        r.Gsql.Eval.r_vsets)

let run () =
  let sf = getenv_float "COMPILE_SF" 0.1 in
  let runs = Util.getenv_int "COMPILE_RUNS" 5 in
  let t = Ldbc.Snb.generate ~sf () in
  let graph = t.Ldbc.Snb.graph in
  Printf.printf "SNB sf=%.2f: %s\n" sf (Ldbc.Snb.stats t);
  let dir = queries_dir () in
  let rows, sidecar =
    List.split
      (List.map
         (fun c ->
           let src = read_file (Filename.concat dir c.c_file) in
           let q = Gsql.Parser.parse_query src in
           let name = q.Gsql.Ast.q_name in
           let plan = Gsql.Compile.compile ~schema:(G.schema graph) q in
           let params = c.c_params in
           let interp () = Gsql.Eval.run_query graph ~params q in
           let compiled () = Gsql.Compile.run plan ~params graph in
           let ri = interp () and rc = compiled () in
           if fingerprint ri <> fingerprint rc then begin
             Printf.eprintf "FAIL: %s diverges between interpreter and compiled plan\n" name;
             exit 1
           end;
           let interp_ms = Util.median_ms ~runs (fun () -> ignore (interp ())) in
           let compiled_ms = Util.median_ms ~runs (fun () -> ignore (compiled ())) in
           let speedup = interp_ms /. compiled_ms in
           let row =
             [ name;
               Util.ms_to_string interp_ms;
               Util.ms_to_string compiled_ms;
               Printf.sprintf "%.2fx" speedup;
               Printf.sprintf "%.2fms" (Gsql.Compile.compile_ms plan);
               Printf.sprintf "%d/%d"
                 (Gsql.Compile.compiled_ops plan)
                 (Gsql.Compile.plan_ops plan) ]
           in
           let json =
             ( name,
               J.Obj
                 [ ("interp_ms", J.Float interp_ms);
                   ("compiled_ms", J.Float compiled_ms);
                   ("speedup", J.Float speedup);
                   ("compile_ms", J.Float (Gsql.Compile.compile_ms plan));
                   ("plan_ops", J.Int (Gsql.Compile.plan_ops plan));
                   ("compiled_ops", J.Int (Gsql.Compile.compiled_ops plan)) ] )
           in
           ((row, speedup), json))
         cases)
  in
  Util.print_table
    ~title:(Printf.sprintf "interpreter vs compiled plan (sf=%.2f, median of %d)" sf runs)
    [ "query"; "interp"; "compiled"; "speedup"; "compile"; "ops" ]
    (List.map fst rows);
  print_endline
    "\nBoth paths returned identical results (tables, PRINT output, vertex sets);\n\
     'compile' is the one-time install cost the compiled column no longer pays per invoke.";
  (match Sys.getenv_opt "BENCH_JSON" with
   | None -> ()
   | Some dir ->
     let doc =
       J.Obj
         [ ("suite", J.Str "compile");
           ("sf", J.Float sf);
           ("runs", J.Int runs);
           ("queries", J.Obj sidecar) ]
     in
     let path = Filename.concat dir "BENCH_compile.json" in
     let oc = open_out path in
     output_string oc (J.pretty doc);
     output_char oc '\n';
     close_out oc;
     Printf.eprintf "[sidecar] %s\n%!" path);
  if Util.getenv_flag "COMPILE_GATE" then
    match List.filter (fun (_, speedup) -> speedup < 1.0) rows with
    | [] -> ()
    | slow ->
      List.iter
        (fun (row, speedup) ->
          Printf.eprintf "GATE: %s compiled slower than interpreter (%.2fx)\n"
            (List.hd row) speedup)
        slow;
      exit 1
