(* Shard-count ablation — BSP supersteps vs the flat kernel.

   The multi-source ASP counting workload of the fan-out experiment
   (KNOWS* over the SNB Person network), swept over shard counts 1, 2,
   4, 8.  Shard counts >= 2 route every source through the
   Shard.Superstep BSP driver (per-superstep domain fan-out, cross-shard
   frontier exchange at the barrier); shards = 1 is the flat CSR kernel
   with per-source fan-out.  The correctness gate requires every sharded
   binding list to be identical (order included) to the unsharded one —
   docs/SHARDING.md — before anything is timed; the table reports the
   wall-clock cost of the exchange plus the partition topology.

   Environment: SHARD_SF scales the SNB generator (default 0.5),
   SHARD_RUNS the median width (default 3), SHARD_COUNTS the swept
   counts (default "1,2,4,8").  Sidecar: BENCH_shard.json with
   [bench.shard.s<k>_ms] per count, [bench.shard.boundary_frac_s<k>]
   per partition, and [bench.shard.overhead] (best sharded / flat). *)

module Sem = Pathsem.Semantics

let g_overhead = Obs.Metrics.gauge "bench.shard.overhead"

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with Failure _ -> default)
  | None -> default

let shard_counts () =
  match Sys.getenv_opt "SHARD_COUNTS" with
  | None -> [ 1; 2; 4; 8 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
    |> List.filter (fun n -> n >= 1)

let run () =
  let sf = getenv_float "SHARD_SF" 0.5 in
  let runs = Util.getenv_int "SHARD_RUNS" 3 in
  let t = Ldbc.Snb.generate ~sf () in
  let g = t.Ldbc.Snb.graph in
  let sources = t.Ldbc.Snb.persons in
  let ast = Darpe.Parse.parse "KNOWS*" in
  Printf.printf "%s\n%d sources\n" (Ldbc.Snb.stats t) (Array.length sources);
  let count ?shards () =
    Pathsem.Engine.match_pairs ?shards g ast Sem.All_shortest ~sources
      ~dst_ok:(fun _ -> true)
  in
  let flat = count () in
  let rows = ref [] in
  let flat_ms = ref 0.0 in
  let best_sharded = ref infinity in
  List.iter
    (fun n ->
      let shards = if n <= 1 then None else Some (Shard.Partition.create ~shards:n g) in
      (* Correctness gate before timing: sharding must be unobservable. *)
      if count ?shards () <> flat then
        failwith (Printf.sprintf "shard ablation: shards=%d diverged" n);
      let ms = Util.median_ms ~runs (fun () -> ignore (count ?shards ())) in
      let h = Obs.Metrics.histogram (Printf.sprintf "bench.shard.s%d_ms" n) in
      Obs.Metrics.observe h ms;
      let boundary_frac, balance =
        match shards with
        | None -> (0.0, 1.0)
        | Some p ->
          let slots =
            Array.fold_left
              (fun a (sl : Shard.Partition.slice) ->
                a + sl.Shard.Partition.sl_csr.Pgraph.Csr.ne)
              0 (Shard.Partition.slices p)
          in
          ( (if slots = 0 then 0.0
             else float_of_int (Shard.Partition.boundary_edges p) /. float_of_int slots),
            Shard.Partition.balance p )
      in
      if n <= 1 then flat_ms := ms else best_sharded := min !best_sharded ms;
      Obs.Metrics.set_gauge
        (Obs.Metrics.gauge (Printf.sprintf "bench.shard.boundary_frac_s%d" n))
        boundary_frac;
      rows :=
        [ string_of_int n;
          Printf.sprintf "%.3f" boundary_frac;
          Printf.sprintf "%.3f" balance;
          Util.ms_to_string ms ]
        :: !rows)
    (shard_counts ());
  if !flat_ms > 0.0 && !best_sharded < infinity then
    Obs.Metrics.set_gauge g_overhead (!best_sharded /. !flat_ms);
  Util.print_table ~title:"Shard ablation — ASP counting over KNOWS* (BSP supersteps)"
    [ "shards"; "boundary"; "balance"; "median" ]
    (List.rev !rows)
