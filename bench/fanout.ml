(* Experiment E6 — parallel per-source fan-out on an SNB-style graph.

   The multi-source counting workload the CSR + domain fan-out work
   targets: all-shortest-paths counting from every Person over the
   undirected KNOWS network (pattern [KNOWS*]), once sequentially
   ([~workers:1]) and once with the default domain fan-out.  The binding
   tables must be identical (order included — the engine pins it); the
   point of the table is the wall-clock ratio.

   Environment: FANOUT_SF scales the generator (default 1.0, ~300
   persons); FANOUT_RUNS the median width (default 3); FANOUT_WORKERS
   overrides the worker count (default [Accum.Parallel.default_workers],
   i.e. the machine's recommended domain count — on a 1-core box the
   comparison degenerates to seq-vs-seq, so force e.g. FANOUT_WORKERS=4
   to exercise the fan-out machinery there).  The speedup lands in the
   [bench.fanout.speedup] gauge of the BENCH_fanout.json sidecar,
   seq/par medians in [bench.fanout.{seq,par}_ms]. *)

module Sem = Pathsem.Semantics

let h_legacy = Obs.Metrics.histogram "bench.fanout.legacy_kernel_ms"
let h_csr = Obs.Metrics.histogram "bench.fanout.csr_kernel_ms"
let h_seq = Obs.Metrics.histogram "bench.fanout.seq_ms"
let h_par = Obs.Metrics.histogram "bench.fanout.par_ms"
let g_speedup = Obs.Metrics.gauge "bench.fanout.speedup"

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with Failure _ -> default)
  | None -> default

let run () =
  let sf = getenv_float "FANOUT_SF" 1.0 in
  let runs = Util.getenv_int "FANOUT_RUNS" 3 in
  let t = Ldbc.Snb.generate ~sf () in
  let g = t.Ldbc.Snb.graph in
  let sources = t.Ldbc.Snb.persons in
  let ast = Darpe.Parse.parse "KNOWS*" in
  let workers =
    Util.getenv_int "FANOUT_WORKERS" (Accum.Parallel.default_workers (Array.length sources))
  in
  Printf.printf "%s\n%d sources, %d domains available\n" (Ldbc.Snb.stats t)
    (Array.length sources) workers;
  let count w =
    Pathsem.Engine.match_pairs ~workers:w g ast Sem.All_shortest ~sources
      ~dst_ok:(fun _ -> true)
  in
  (* Correctness gate before timing: the fan-out must be unobservable. *)
  let seq_bindings = count 1 in
  let par_bindings = count workers in
  if seq_bindings <> par_bindings then
    failwith "fanout: parallel and sequential binding tables differ";
  let n_bindings = List.length seq_bindings in
  (* Kernel ablation: the pre-CSR list-frontier kernel vs the flat CSR
     kernel with reused scratch, same DFA, same sources, no fan-out —
     isolates the tentpole's single-threaded win. *)
  let dfa = Pathsem.Engine.compile g ast in
  let t_legacy =
    Util.median_ms ~runs (fun () ->
        Array.iter (fun s -> ignore (Pathsem.Count.single_source_legacy g dfa s)) sources)
  in
  let scratch = Pathsem.Count.create_scratch () in
  let t_csr =
    Util.median_ms ~runs (fun () ->
        Array.iter (fun s -> ignore (Pathsem.Count.single_source ~scratch g dfa s)) sources)
  in
  let t_seq = Util.median_ms ~runs (fun () -> ignore (count 1)) in
  let t_par = Util.median_ms ~runs (fun () -> ignore (count workers)) in
  let speedup = t_seq /. t_par in
  Obs.Metrics.observe h_legacy t_legacy;
  Obs.Metrics.observe h_csr t_csr;
  Obs.Metrics.observe h_seq t_seq;
  Obs.Metrics.observe h_par t_par;
  Obs.Metrics.set_gauge g_speedup speedup;
  Util.print_table
    ~title:"Fan-out — multi-source ASP counting over KNOWS* (CSR kernel)"
    [ "engine"; "workers"; "bindings"; "median" ]
    [ [ "legacy kernel (list frontier)"; "1"; "-"; Util.ms_to_string t_legacy ];
      [ "CSR kernel (flat frontier)"; "1"; "-"; Util.ms_to_string t_csr ];
      [ "engine sequential"; "1"; string_of_int n_bindings; Util.ms_to_string t_seq ];
      [ "engine parallel"; string_of_int workers; string_of_int n_bindings;
        Util.ms_to_string t_par ] ];
  Printf.printf "\nKernel: CSR %.2fx vs legacy; fan-out: %.2fx over %d sources with %d workers\n"
    (t_legacy /. t_csr) speedup (Array.length sources) workers
