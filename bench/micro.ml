(* Bechamel micro-benchmarks: one Test.make per paper table, measuring the
   table's characteristic kernel with OLS-estimated per-run time.  The
   wall-clock tables (Table1/Snb_bench/Appendixb) reproduce the paper's
   rows; these give statistically robust single-kernel numbers. *)

open Bechamel
open Toolkit

let diamond = lazy (Pathsem.Toygraphs.diamond_chain 16)
let snb = lazy (Ldbc.Snb.generate ~sf:0.15 ())
let snb_rows = lazy (Appendixb.extract_rows (Lazy.force snb))

let test_table1_counting =
  Test.make ~name:"table1/count-ASP (n=16)"
    (Staged.stage (fun () ->
         let { Pathsem.Toygraphs.g; vertex } = Lazy.force diamond in
         Pathsem.Engine.count_single_pair g (Darpe.Parse.parse "E>*")
           Pathsem.Semantics.All_shortest ~src:(vertex "v0") ~dst:(vertex "v16")))

let test_table1_enumeration =
  Test.make ~name:"table1/enum-NRE (n=10)"
    (Staged.stage (fun () ->
         let { Pathsem.Toygraphs.g; vertex } = Lazy.force diamond in
         Pathsem.Engine.count_single_pair g (Darpe.Parse.parse "E>*")
           Pathsem.Semantics.Non_repeated_edge ~src:(vertex "v0") ~dst:(vertex "v10")))

let test_snb_counting =
  Test.make ~name:"snb/ic3-hops3-ASP"
    (Staged.stage (fun () ->
         Ldbc.Ic.run (Lazy.force snb) ~hops:3 ~seed:42 Ldbc.Ic.Ic3))

let test_snb_enumeration =
  Test.make ~name:"snb/ic3-hops3-NRE"
    (Staged.stage (fun () ->
         Ldbc.Ic.run (Lazy.force snb) ~semantics:Pathsem.Semantics.Non_repeated_edge ~hops:3
           ~seed:42 Ldbc.Ic.Ic3))

let test_appendixb_acc =
  Test.make ~name:"appendixB/Q_acc"
    (Staged.stage (fun () -> Appendixb.run_acc (Lazy.force snb_rows)))

let test_appendixb_gs =
  Test.make ~name:"appendixB/Q_gs"
    (Staged.stage (fun () -> Appendixb.run_gs (Lazy.force snb_rows)))

let test_appendixb_sql =
  Test.make ~name:"appendixB/Q_sql"
    (Staged.stage (fun () -> Appendixb.run_sql (Lazy.force snb_rows)))

(* Observability overhead: the acceptance bar is that dormant instrumentation
   costs one branch.  obs/counter-off measures the disabled path (the state
   every engine hot loop pays unconditionally); obs/counter-on the enabled
   one; obs/count-ASP-metrics the counting kernel with the full metrics
   registry live, to compare against table1/count-ASP above. *)
let obs_counter = Obs.Metrics.counter "bench.obs.noise"

let test_obs_counter_off =
  Test.make ~name:"obs/counter-off (x1000)"
    (Staged.stage (fun () ->
         Obs.Metrics.set_enabled false;
         for _ = 1 to 1000 do
           Obs.Metrics.incr obs_counter 1
         done))

let test_obs_counter_on =
  Test.make ~name:"obs/counter-on (x1000)"
    (Staged.stage (fun () ->
         Obs.Metrics.set_enabled true;
         for _ = 1 to 1000 do
           Obs.Metrics.incr obs_counter 1
         done;
         Obs.Metrics.set_enabled false))

let test_obs_count_asp =
  Test.make ~name:"obs/count-ASP-metrics-on (n=16)"
    (Staged.stage (fun () ->
         let { Pathsem.Toygraphs.g; vertex } = Lazy.force diamond in
         Obs.Metrics.set_enabled true;
         Fun.protect
           ~finally:(fun () -> Obs.Metrics.set_enabled false)
           (fun () ->
             Pathsem.Engine.count_single_pair g (Darpe.Parse.parse "E>*")
               Pathsem.Semantics.All_shortest ~src:(vertex "v0") ~dst:(vertex "v16"))))

let all_tests =
  Test.make_grouped ~name:"gsql-repro"
    [ test_table1_counting; test_table1_enumeration; test_snb_counting; test_snb_enumeration;
      test_appendixb_acc; test_appendixb_gs; test_appendixb_sql; test_obs_counter_off;
      test_obs_counter_on; test_obs_count_asp ]

let run () =
  print_endline "\n== Bechamel micro-benchmarks (OLS per-run estimates) ==";
  (* Force fixtures outside the measured region. *)
  ignore (Lazy.force diamond);
  ignore (Lazy.force snb);
  ignore (Lazy.force snb_rows);
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] all_tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        let est =
          match Analyze.OLS.estimates res with
          | Some [ e ] -> Printf.sprintf "%.3f ms/run" (e /. 1e6)
          | _ -> "n/a"
        in
        [ name; est ] :: acc)
      results []
    |> List.sort compare
  in
  Util.print_table ~title:"kernel estimates" [ "benchmark"; "time" ] rows
